//! Fiduccia–Mattheyses bipartitioning \[15\].
//!
//! `physicalGraphBiPartition()` splits the available GPUs into two coherent
//! halves by minimizing the affinity crossing the cut. This is the classic
//! FM pass structure: every vertex is moved at most once per pass in order
//! of best gain (subject to a balance corridor), the best balanced prefix of
//! the move sequence is kept, and passes repeat until a pass yields no
//! improvement.
//!
//! Affinity weights are real-valued, so instead of integer gain buckets we
//! keep a gain array and select the maximum by scan — `O(n)` per move,
//! `O(n²)` per pass, which at topology sizes (≤ tens of GPUs per machine,
//! hundreds of machines) is comfortably below a microsecond-to-millisecond
//! budget and preserves FM's pass semantics exactly.

use crate::affinity::AffinityGraph;
use std::cell::RefCell;

/// Result of a bipartition: `side[i]` is `true` when vertex `i` landed in
/// the left part.
#[derive(Debug, Clone, PartialEq)]
pub struct Bipartition {
    /// Side assignment per vertex (`true` = left).
    pub side: Vec<bool>,
    /// Total affinity crossing the cut.
    pub cut: f64,
}

impl Bipartition {
    /// Vertex indices of the left part.
    pub fn left(&self) -> Vec<usize> {
        (0..self.side.len()).filter(|&i| self.side[i]).collect()
    }

    /// Vertex indices of the right part.
    pub fn right(&self) -> Vec<usize> {
        (0..self.side.len()).filter(|&i| !self.side[i]).collect()
    }
}

/// Reusable buffers for [`fm_bipartition_with`]: one allocation set per
/// thread instead of per call. The DRB recursion runs FM once per split
/// ratio per level, so the per-call seed/gain/lock vectors dominated the
/// mapper's allocation profile before hoisting them here.
#[derive(Debug, Default)]
pub struct FmScratch {
    /// The four deterministic multi-start seed partitions.
    seeds: [Vec<bool>; 4],
    /// Best side assignment of the seed currently being refined.
    best_side: Vec<bool>,
    /// Per-pass move locks.
    locked: Vec<bool>,
    /// Working side assignment during a pass.
    cur_side: Vec<bool>,
    /// Incrementally maintained move gains.
    gains: Vec<f64>,
    /// Move sequence of the current pass.
    moves: Vec<usize>,
    /// Staging buffer for adopting the best balanced prefix.
    adopted: Vec<bool>,
    /// Side assignment of the best seed seen so far.
    winner: Vec<bool>,
}

impl FmScratch {
    /// Writes the four deterministic seed partitions (prefix, suffix,
    /// interleaved, greedy-affinity) into `self.seeds`, reusing their
    /// buffers.
    fn fill_seeds(&mut self, g: &AffinityGraph, target_left: usize) {
        let n = g.len();
        // Prefix: the first `target_left` vertices.
        self.seeds[0].clear();
        self.seeds[0].extend((0..n).map(|i| i < target_left));
        // Suffix: the last `target_left` vertices.
        self.seeds[1].clear();
        self.seeds[1].extend((0..n).map(|i| i >= n - target_left));
        // Interleaved: evens first (a deliberately scrambled seed).
        self.seeds[2].clear();
        self.seeds[2].resize(n, false);
        for v in (0..n).step_by(2).chain((1..n).step_by(2)).take(target_left) {
            self.seeds[2][v] = true;
        }
        // Greedy: grow the left side from vertex 0 by max affinity to the set.
        self.seeds[3].clear();
        self.seeds[3].resize(n, false);
        self.seeds[3][0] = true;
        for _ in 1..target_left {
            let in_left = &self.seeds[3];
            let pick = (0..n)
                .filter(|&v| !in_left[v])
                .max_by(|&a, &b| {
                    let fa = g.affinity_to_side(a, in_left, true);
                    let fb = g.affinity_to_side(b, in_left, true);
                    fa.partial_cmp(&fb).expect("finite").then(b.cmp(&a))
                })
                .expect("vertices remain");
            self.seeds[3][pick] = true;
        }
    }
}

/// Gain of moving vertex `v` to the opposite side: external minus internal
/// affinity. Positive gain reduces the cut.
fn gain(g: &AffinityGraph, side: &[bool], v: usize) -> f64 {
    let mut internal = 0.0;
    let mut external = 0.0;
    for j in 0..g.len() {
        if j == v {
            continue;
        }
        let a = g.affinity(v, j);
        if side[j] == side[v] {
            internal += a;
        } else {
            external += a;
        }
    }
    external - internal
}

/// Bipartitions `g` into a left part of exactly `target_left` vertices and
/// its complement, minimizing the cut affinity.
///
/// ```
/// use gts_map::{fm_bipartition, AffinityGraph};
/// use gts_topo::power8_minsky;
///
/// let machine = power8_minsky();
/// let gpus: Vec<_> = machine.gpus().collect();
/// let graph = AffinityGraph::from_machine(&machine, &gpus);
/// let split = fm_bipartition(&graph, 2, 3);
/// // The NVLink pairs end up on the same side: the cut crosses only the
/// // four weak inter-socket couplings.
/// assert_eq!(split.side[0], split.side[1]);
/// assert_eq!(split.side[2], split.side[3]);
/// ```
///
/// Runs up to `max_passes` FM passes (2–4 suffice in practice; SCOTCH
/// defaults to a small constant too) from several deterministic initial
/// partitions (multi-start guards against the local minima single-seed FM
/// is known for). Deterministic: ties break on vertex index.
///
/// # Panics
///
/// Panics unless `0 < target_left < g.len()`.
pub fn fm_bipartition(g: &AffinityGraph, target_left: usize, max_passes: usize) -> Bipartition {
    thread_local! {
        static SCRATCH: RefCell<FmScratch> = RefCell::new(FmScratch::default());
    }
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut s) => fm_bipartition_with(g, target_left, max_passes, &mut s),
        // Re-entrant call (an oracle callback partitioning again): fall
        // back to a fresh scratch rather than panicking on the RefCell.
        Err(_) => fm_bipartition_with(g, target_left, max_passes, &mut FmScratch::default()),
    })
}

/// [`fm_bipartition`] with caller-owned scratch buffers — the allocation-free
/// path the DRB recursion drives. Identical results to `fm_bipartition`.
///
/// # Panics
///
/// Panics unless `0 < target_left < g.len()`.
pub fn fm_bipartition_with(
    g: &AffinityGraph,
    target_left: usize,
    max_passes: usize,
    s: &mut FmScratch,
) -> Bipartition {
    let n = g.len();
    assert!(
        target_left > 0 && target_left < n,
        "target_left must split the graph, got {target_left} of {n}"
    );

    // Multi-start: prefix, suffix, interleaved, and greedy-affinity seeds.
    s.fill_seeds(g, target_left);
    let mut best_cut = f64::INFINITY;
    let mut have_best = false;
    for k in 0..s.seeds.len() {
        let cut = fm_from_seed(g, target_left, max_passes, s, k);
        if !have_best || cut < best_cut - 1e-12 {
            best_cut = cut;
            s.winner.clone_from(&s.best_side);
            have_best = true;
        }
    }
    assert!(have_best, "at least one seed partition");
    Bipartition { side: s.winner.clone(), cut: best_cut }
}

/// The classic FM pass loop from seed partition `s.seeds[k]`. Leaves the
/// refined side assignment in `s.best_side` and returns its cut.
fn fm_from_seed(
    g: &AffinityGraph,
    target_left: usize,
    max_passes: usize,
    s: &mut FmScratch,
    k: usize,
) -> f64 {
    let n = g.len();
    s.best_side.clone_from(&s.seeds[k]);
    let mut best_cut = g.cut(&s.best_side);

    for _ in 0..max_passes {
        let pass_start_cut = best_cut;
        s.locked.clear();
        s.locked.resize(n, false);
        s.cur_side.clone_from(&s.best_side);
        let mut cur_cut = best_cut;
        let mut left_count = target_left;

        // Balance corridor during the pass: ±1 around the target so moves in
        // both directions stay possible; only exactly-balanced prefixes are
        // eligible as results.
        s.moves.clear();
        let mut best_prefix: Option<(usize, f64)> = None;
        // Gains are maintained incrementally: O(n²) to seed, O(n) per move.
        s.gains.clear();
        for v in 0..n {
            let gv = gain(g, &s.cur_side, v);
            s.gains.push(gv);
        }
        for _ in 0..n {
            // Pick the unlocked vertex with max gain whose move keeps the
            // corridor.
            let mut pick: Option<(usize, f64)> = None;
            for v in 0..n {
                if s.locked[v] {
                    continue;
                }
                let new_left = if s.cur_side[v] { left_count - 1 } else { left_count + 1 };
                if new_left + 1 < target_left
                    || new_left > target_left + 1
                    || new_left == 0
                    || new_left == n
                {
                    continue;
                }
                let gv = s.gains[v];
                match pick {
                    Some((_, best_g)) if gv <= best_g => {}
                    _ => pick = Some((v, gv)),
                }
            }
            let Some((v, gv)) = pick else { break };
            // Flip v and patch neighbour gains: a vertex that shared v's old
            // side gains 2·a(u,v) (that edge turns external), the other side
            // loses it.
            for u in 0..n {
                if u == v {
                    continue;
                }
                let a = g.affinity(u, v);
                if s.cur_side[u] == s.cur_side[v] {
                    s.gains[u] += 2.0 * a;
                } else {
                    s.gains[u] -= 2.0 * a;
                }
            }
            s.cur_side[v] = !s.cur_side[v];
            s.gains[v] = -gv;
            left_count = if s.cur_side[v] { left_count + 1 } else { left_count - 1 };
            cur_cut -= gv;
            s.locked[v] = true;
            s.moves.push(v);
            if left_count == target_left
                && best_prefix.is_none_or(|(_, c)| cur_cut < c)
            {
                best_prefix = Some((s.moves.len(), cur_cut));
            }
        }

        // Adopt the best balanced prefix if it improves on the pass start.
        if let Some((prefix_len, cut)) = best_prefix {
            if cut + 1e-12 < best_cut {
                s.adopted.clone_from(&s.best_side);
                for &v in &s.moves[..prefix_len] {
                    s.adopted[v] = !s.adopted[v];
                }
                std::mem::swap(&mut s.best_side, &mut s.adopted);
                best_cut = cut;
            }
        }

        if best_cut + 1e-12 >= pass_start_cut {
            break; // pass converged
        }
    }

    best_cut
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_topo::{power8_minsky, symmetric_machine, GpuId, LinkProfile};

    #[test]
    fn minsky_splits_along_the_socket_boundary() {
        let m = power8_minsky();
        let gpus: Vec<GpuId> = m.gpus().collect();
        let g = AffinityGraph::from_machine(&m, &gpus);
        let p = fm_bipartition(&g, 2, 4);
        // The two NVLink pairs must stay together.
        assert_eq!(p.side[0], p.side[1], "GPU0/GPU1 separated");
        assert_eq!(p.side[2], p.side[3], "GPU2/GPU3 separated");
        assert_ne!(p.side[0], p.side[2]);
        assert!((p.cut - 4.0 / 22.0).abs() < 1e-9);
    }

    #[test]
    fn adversarial_initial_partition_is_repaired() {
        // Order the GPUs so the naive initial split is the worst case:
        // [GPU0, GPU2, GPU1, GPU3] puts one GPU of each socket left.
        let m = power8_minsky();
        let order = [GpuId(0), GpuId(2), GpuId(1), GpuId(3)];
        let g = AffinityGraph::from_machine(&m, &order);
        let p = fm_bipartition(&g, 2, 4);
        // Vertices 0 (GPU0) and 2 (GPU1) must end together.
        assert_eq!(p.side[0], p.side[2]);
        assert_eq!(p.side[1], p.side[3]);
        assert!((p.cut - 4.0 / 22.0).abs() < 1e-9);
    }

    #[test]
    fn four_socket_machine_splits_socket_coherently() {
        let m = symmetric_machine("quad", 4, 2, LinkProfile::nvlink_dual());
        let gpus: Vec<GpuId> = m.gpus().collect();
        let g = AffinityGraph::from_machine(&m, &gpus);
        let p = fm_bipartition(&g, 4, 4);
        // Sibling pairs (2k, 2k+1) stay together.
        for k in 0..4 {
            assert_eq!(p.side[2 * k], p.side[2 * k + 1], "socket {k} split");
        }
    }

    #[test]
    fn odd_sized_sets_split_to_requested_sizes() {
        let m = power8_minsky();
        let gpus = [GpuId(0), GpuId(1), GpuId(2)];
        let g = AffinityGraph::from_machine(&m, &gpus);
        let p = fm_bipartition(&g, 2, 4);
        assert_eq!(p.left().len(), 2);
        assert_eq!(p.right().len(), 1);
        // The NVLink pair sticks together; GPU2 is the singleton.
        assert_eq!(p.side[0], p.side[1]);
        assert_ne!(p.side[2], p.side[0]);
    }

    #[test]
    fn two_vertices_split_trivially() {
        let m = power8_minsky();
        let g = AffinityGraph::from_machine(&m, &[GpuId(0), GpuId(2)]);
        let p = fm_bipartition(&g, 1, 4);
        assert_eq!(p.left().len(), 1);
        assert_eq!(p.right().len(), 1);
        assert!((p.cut - 1.0 / 22.0).abs() < 1e-9);
    }

    #[test]
    fn cut_matches_partition_recomputation() {
        let m = symmetric_machine("m", 2, 4, LinkProfile::nvlink_dual());
        let gpus: Vec<GpuId> = m.gpus().collect();
        let g = AffinityGraph::from_machine(&m, &gpus);
        let p = fm_bipartition(&g, 4, 4);
        assert!((p.cut - g.cut(&p.side)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must split")]
    fn degenerate_target_rejected() {
        let m = power8_minsky();
        let g = AffinityGraph::from_machine(&m, &[GpuId(0), GpuId(1)]);
        fm_bipartition(&g, 0, 4);
    }

    #[test]
    fn deterministic_across_calls() {
        let m = symmetric_machine("m", 3, 3, LinkProfile::nvlink_dual());
        let gpus: Vec<GpuId> = m.gpus().collect();
        let g = AffinityGraph::from_machine(&m, &gpus);
        let a = fm_bipartition(&g, 4, 4);
        let b = fm_bipartition(&g, 4, 4);
        assert_eq!(a, b);
    }

    /// A scratch reused across graphs of different sizes and targets must
    /// give bit-identical results to fresh scratch per call: no stale
    /// buffer contents may leak between runs.
    #[test]
    fn reused_scratch_matches_fresh_scratch() {
        let big = symmetric_machine("big", 4, 4, LinkProfile::nvlink_dual());
        let small = power8_minsky();
        let big_gpus: Vec<GpuId> = big.gpus().collect();
        let small_gpus: Vec<GpuId> = small.gpus().collect();
        let gb = AffinityGraph::from_machine(&big, &big_gpus);
        let gs = AffinityGraph::from_machine(&small, &small_gpus);

        let mut reused = FmScratch::default();
        // Interleave shapes so every buffer shrinks and regrows.
        for (g, targets) in [(&gb, 1..16usize), (&gs, 1..4usize)] {
            for t in targets {
                let with_reuse = fm_bipartition_with(g, t, 4, &mut reused);
                let fresh = fm_bipartition_with(g, t, 4, &mut FmScratch::default());
                assert_eq!(with_reuse, fresh, "target {t}");
                assert_eq!(
                    with_reuse.cut.to_bits(),
                    fresh.cut.to_bits(),
                    "cut bits diverged at target {t}"
                );
            }
        }
        // And the big graph again after the small one shrank the buffers.
        let again = fm_bipartition_with(&gb, 8, 4, &mut reused);
        assert_eq!(again, fm_bipartition_with(&gb, 8, 4, &mut FmScratch::default()));
    }
}
