//! Algorithms 2 & 3 — utility-driven Dual Recursive Bi-partitioning.
//!
//! `DRB(A, P, C)` recursively splits the physical GPU set `P` (Fiduccia–
//! Mattheyses over the affinity graph) and the job's task set `A`
//! (Algorithm 3: each task goes to the sub-partition offering it higher
//! utility, subject to capacity), bottoming out when a sub-partition holds
//! one GPU, which is then assigned the task routed there. Asymptotic cost
//! `Θ(|E_A| · log₂|V_P|)` as in Pellegrini & Roman \[35\].
//!
//! The `C` array of Algorithm 2 — "the communication cost of all GPUs, even
//! the ones not into the sub-partition" — is carried here as a per-task
//! accumulator of communication costs to tasks already routed to *other*
//! sub-partitions, so deeper levels still feel the pull of split-off
//! partners.

use crate::affinity::AffinityGraph;
use crate::fm::{fm_bipartition_with, Bipartition, FmScratch};
use crate::utility::UtilityWeights;
use gts_job::JobGraph;
use gts_topo::GpuId;
use std::cell::RefCell;
use std::fmt;

/// Reusable buffers for one thread's [`drb_map`] calls: the FM scratch plus
/// pools of affinity-graph buffers (one set per live recursion level —
/// each level returns its buffers before recursing, so the pools stay at
/// depth-of-recursion size).
#[derive(Debug, Default)]
struct DrbScratch {
    fm: FmScratch,
    gpu_bufs: Vec<Vec<GpuId>>,
    weight_bufs: Vec<Vec<f64>>,
}

thread_local! {
    static DRB_SCRATCH: RefCell<DrbScratch> = RefCell::new(DrbScratch::default());
}

/// Live-cluster queries the mapping needs but cannot own (allocation state,
/// running-job profiles). Implemented by the scheduler; tests use mocks.
pub trait PlacementOracle {
    /// Qualitative distance between two GPUs of the candidate set.
    fn distance(&self, a: GpuId, b: GpuId) -> f64;

    /// Eq. 4-style predicted interference were the job to occupy `gpus`:
    /// 1.0 = no interference, smaller is worse (bounded below by ~0.5).
    fn interference(&self, gpus: &[GpuId]) -> f64;

    /// Eq. 5 system fragmentation after hypothetically allocating `gpus`:
    /// 0 = fully utilized domains, 1 = everything free/fragmented.
    fn fragmentation_after(&self, gpus: &[GpuId]) -> f64;
}

/// Why a mapping attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// More tasks than available GPUs (`t_gpu ≤ p_gpu` violated, §4.3).
    InsufficientGpus {
        /// Tasks requested.
        requested: usize,
        /// GPUs available.
        available: usize,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::InsufficientGpus { requested, available } => write!(
                f,
                "job requests {requested} GPUs but only {available} are available"
            ),
        }
    }
}

impl std::error::Error for MappingError {}

/// Mean distance between the members of two GPU sets (used to estimate the
/// cost of an edge that crosses sub-partitions). Falls back to 0 for empty
/// sets.
fn mean_cross_distance(oracle: &dyn PlacementOracle, a: &[GpuId], b: &[GpuId]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut sum = 0.0;
    for &x in a {
        for &y in b {
            sum += oracle.distance(x, y);
        }
    }
    sum / (a.len() * b.len()) as f64
}

/// Mean pairwise distance within one GPU set (0 for sets of size < 2).
fn mean_internal_distance(oracle: &dyn PlacementOracle, gpus: &[GpuId]) -> f64 {
    if gpus.len() < 2 {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut pairs = 0usize;
    for (i, &x) in gpus.iter().enumerate() {
        for &y in &gpus[i + 1..] {
            sum += oracle.distance(x, y);
            pairs += 1;
        }
    }
    sum / pairs as f64
}

/// Algorithm 3: split the tasks in `tasks` between sub-partitions `p0` /
/// `p1`, choosing per task the side with the higher utility, under the
/// capacity constraint. Returns `(tasks0, tasks1, c0, c1)` where the `c`
/// vectors carry each task's accumulated external communication cost.
#[allow(clippy::too_many_arguments)]
fn job_graph_bipartition(
    job: &JobGraph,
    tasks: &[usize],
    c: &[f64],
    p0: &[GpuId],
    p1: &[GpuId],
    oracle: &dyn PlacementOracle,
    weights: UtilityWeights,
) -> (Vec<usize>, Vec<usize>, Vec<f64>, Vec<f64>) {
    // When the whole task set fits one side but not the other, splitting it
    // would push job edges across the *current* boundary — the most
    // expensive cut of the whole recursion — for no capacity reason. Route
    // it wholesale and let the deeper levels arrange it.
    if tasks.len() > p0.len() && tasks.len() <= p1.len() {
        let a1: Vec<usize> = (0..tasks.len()).collect();
        let costs1: Vec<f64> = a1.iter().map(|&s| c[s]).collect();
        return (Vec::new(), tasks.to_vec(), Vec::new(), costs1);
    }
    if tasks.len() > p1.len() && tasks.len() <= p0.len() {
        let a0: Vec<usize> = (0..tasks.len()).collect();
        let costs0: Vec<f64> = a0.iter().map(|&s| c[s]).collect();
        return (tasks.to_vec(), Vec::new(), costs0, Vec::new());
    }

    let d_within0 = mean_internal_distance(oracle, p0).max(1.0);
    let d_within1 = mean_internal_distance(oracle, p1).max(1.0);
    let d_cross = mean_cross_distance(oracle, p0, p1).max(1.0);

    // Per-side placement factors are evaluated once per call (they do not
    // depend on the task): Algorithm 3's getInter()/getFragmentation().
    let i0 = oracle.interference(p0);
    let i1 = oracle.interference(p1);
    let w0 = oracle.fragmentation_after(p0);
    let w1 = oracle.fragmentation_after(p1);

    let mut a0: Vec<usize> = Vec::new();
    let mut a1: Vec<usize> = Vec::new();
    let mut c0 = vec![0.0; tasks.len()];
    let mut c1 = vec![0.0; tasks.len()];

    for (slot, &task) in tasks.iter().enumerate() {
        // getCommCost(): cost of joining each side given the partners
        // already routed.
        let to_a0: f64 = a0.iter().map(|&s| job.weight(task, tasks[s])).sum();
        let to_a1: f64 = a1.iter().map(|&s| job.weight(task, tasks[s])).sum();
        let external = c[slot];
        let tcc0 = to_a0 * d_within0 + to_a1 * d_cross + external;
        let tcc1 = to_a1 * d_within1 + to_a0 * d_cross + external;

        // Utility of each side (Eq. 2 shape: higher is better; the
        // communication term is damped to stay comparable with the unit
        // interference/fragmentation terms).
        let u0 = weights.cc * (1.0 / (1.0 + tcc0)) + weights.b * i0 + weights.d * (1.0 - w0);
        let u1 = weights.cc * (1.0 / (1.0 + tcc1)) + weights.b * i1 + weights.d * (1.0 - w1);

        let cap0 = p0.len();
        let cap1 = p1.len();
        let prefer0 = u0 >= u1;
        if (prefer0 && a0.len() < cap0) || a1.len() >= cap1 {
            a0.push(slot);
        } else {
            a1.push(slot);
        }
    }

    // Accumulate external costs for the recursion: a task in A0 keeps
    // feeling its edges to tasks now fixed in A1 at the cross distance.
    for &s in &a0 {
        let cross: f64 = a1.iter().map(|&t| job.weight(tasks[s], tasks[t])).sum();
        c0[s] = c[s] + cross * d_cross;
    }
    for &s in &a1 {
        let cross: f64 = a0.iter().map(|&t| job.weight(tasks[s], tasks[t])).sum();
        c1[s] = c[s] + cross * d_cross;
    }

    let tasks0: Vec<usize> = a0.iter().map(|&s| tasks[s]).collect();
    let tasks1: Vec<usize> = a1.iter().map(|&s| tasks[s]).collect();
    let costs0: Vec<f64> = a0.iter().map(|&s| c0[s]).collect();
    let costs1: Vec<f64> = a1.iter().map(|&s| c1[s]).collect();
    (tasks0, tasks1, costs0, costs1)
}

/// Algorithm 2: recursive mapping step. `assignment[task] = gpu`.
#[allow(clippy::too_many_arguments)]
fn drb_recurse(
    job: &JobGraph,
    tasks: &[usize],
    c: &[f64],
    gpus: &[GpuId],
    oracle: &dyn PlacementOracle,
    weights: UtilityWeights,
    assignment: &mut [Option<GpuId>],
    scratch: &mut DrbScratch,
) {
    if tasks.is_empty() {
        return; // this partition is not a candidate
    }
    if gpus.len() == 1 {
        debug_assert_eq!(tasks.len(), 1, "capacity was enforced on the way down");
        assignment[tasks[0]] = Some(gpus[0]);
        return;
    }
    if tasks.len() == gpus.len() && tasks.len() <= 2 {
        // Both orderings are equivalent for a 2-clique on 2 GPUs; skip the
        // partitioner for the trivial base case.
        for (&t, &g) in tasks.iter().zip(gpus.iter()) {
            assignment[t] = Some(g);
        }
        return;
    }

    // physicalGraphBiPartition(P): FM over the affinity graph. The natural
    // topology boundary rarely sits exactly at the midpoint (a busy machine
    // may leave 4 free GPUs next to two idle 4-GPU machines), so several
    // split ratios are tried and compared by *ratio cut* —
    // cut / (|left|·|right|) — which is scale-free across imbalances.
    let n = gpus.len();
    let gpu_buf = scratch.gpu_bufs.pop().unwrap_or_default();
    let weight_buf = scratch.weight_bufs.pop().unwrap_or_default();
    let affinity = AffinityGraph::from_distances_reusing(gpus, gpu_buf, weight_buf, |i, j| {
        oracle.distance(gpus[i], gpus[j])
    });
    // Sweep targets and keep the best ratio cut; on ties the later target
    // wins, matching what `Iterator::min_by` over the collected sweep did.
    let mut best: Option<Bipartition> = None;
    let mut best_ratio = f64::INFINITY;
    let mut try_target = |t: usize, scratch: &mut DrbScratch| {
        let candidate = fm_bipartition_with(&affinity, t, 3, &mut scratch.fm);
        let left = candidate.side.iter().filter(|&&s| s).count();
        let ratio = candidate.cut / (left * (n - left)) as f64;
        assert!(ratio.is_finite(), "finite ratio cuts");
        if best.is_none() || ratio <= best_ratio {
            best_ratio = ratio;
            best = Some(candidate);
        }
    };
    if n <= 32 {
        for t in 1..n {
            try_target(t, scratch);
        }
    } else {
        // A 15-point sweep keeps large (cluster-wide spill) instances
        // tractable while still straddling machine-sized boundaries. For
        // n > 32 the points are strictly increasing and interior, so no
        // dedup or range filter is needed.
        for k in 1..16 {
            try_target(k * n / 16, scratch);
        }
    }
    let split = best.expect("at least one target is valid for n ≥ 2");
    let p0: Vec<GpuId> = (0..n).filter(|&i| split.side[i]).map(|i| gpus[i]).collect();
    let p1: Vec<GpuId> = (0..n).filter(|&i| !split.side[i]).map(|i| gpus[i]).collect();
    // The graph is done before the recursion starts: hand its buffers back
    // so the child levels (and the next drb_map call) reuse them.
    let (gpu_buf, weight_buf) = affinity.into_buffers();
    scratch.gpu_bufs.push(gpu_buf);
    scratch.weight_bufs.push(weight_buf);

    let (t0, t1, c0, c1) = job_graph_bipartition(job, tasks, c, &p0, &p1, oracle, weights);
    drb_recurse(job, &t0, &c0, &p0, oracle, weights, assignment, scratch);
    drb_recurse(job, &t1, &c1, &p1, oracle, weights, assignment, scratch);
}

/// Maps a job's communication graph onto the available GPUs.
///
/// Returns `gpus[task]` — one GPU per task, all distinct. Errors when the
/// capacity constraint `|A| ≤ |P|` does not hold.
pub fn drb_map(
    job: &JobGraph,
    available: &[GpuId],
    oracle: &dyn PlacementOracle,
    weights: UtilityWeights,
) -> Result<Vec<GpuId>, MappingError> {
    let n = job.n_tasks();
    if n > available.len() {
        return Err(MappingError::InsufficientGpus {
            requested: n,
            available: available.len(),
        });
    }
    let tasks: Vec<usize> = (0..n).collect();
    let c = vec![0.0; n];
    let mut assignment: Vec<Option<GpuId>> = vec![None; n];
    DRB_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut s) => {
            drb_recurse(job, &tasks, &c, available, oracle, weights, &mut assignment, &mut s);
        }
        // Re-entrant call (an oracle callback mapping again): fall back to
        // a fresh scratch rather than panicking on the RefCell.
        Err(_) => drb_recurse(
            job,
            &tasks,
            &c,
            available,
            oracle,
            weights,
            &mut assignment,
            &mut DrbScratch::default(),
        ),
    });
    let out: Vec<GpuId> = assignment
        .into_iter()
        .map(|a| a.expect("every task is assigned by the recursion"))
        .collect();
    debug_assert!(
        {
            let mut sorted = out.clone();
            sorted.sort_unstable();
            sorted.windows(2).all(|w| w[0] != w[1])
        },
        "assignments must be distinct"
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_topo::{power8_minsky, MachineTopology};

    /// Oracle over a bare machine: no running jobs, all sockets empty.
    struct BareMachine<'a> {
        machine: &'a MachineTopology,
        /// Sockets already hosting foreign work (for interference tests).
        busy_sockets: Vec<gts_topo::SocketId>,
    }

    impl PlacementOracle for BareMachine<'_> {
        fn distance(&self, a: GpuId, b: GpuId) -> f64 {
            self.machine.distance(a, b)
        }
        fn interference(&self, gpus: &[GpuId]) -> f64 {
            let touches_busy = gpus.iter().any(|&g| {
                self.busy_sockets.contains(&self.machine.socket_of(g))
            });
            if touches_busy {
                0.7
            } else {
                1.0
            }
        }
        fn fragmentation_after(&self, _gpus: &[GpuId]) -> f64 {
            0.5
        }
    }

    fn bare(machine: &MachineTopology) -> BareMachine<'_> {
        BareMachine { machine, busy_sockets: vec![] }
    }

    #[test]
    fn two_gpu_job_packs_into_one_socket() {
        let m = power8_minsky();
        let oracle = bare(&m);
        let job = JobGraph::uniform(2, 4.0);
        let all: Vec<GpuId> = m.gpus().collect();
        let g = drb_map(&job, &all, &oracle, UtilityWeights::default()).unwrap();
        assert_eq!(g.len(), 2);
        assert!(m.is_packed(&g), "got {g:?}");
    }

    #[test]
    fn two_gpu_job_avoids_the_busy_socket() {
        let m = power8_minsky();
        let oracle = BareMachine {
            machine: &m,
            busy_sockets: vec![gts_topo::SocketId(0)],
        };
        let job = JobGraph::uniform(2, 4.0);
        let all: Vec<GpuId> = m.gpus().collect();
        let g = drb_map(&job, &all, &oracle, UtilityWeights::default()).unwrap();
        // Socket 1's GPUs are 2 and 3.
        let mut got = g.clone();
        got.sort_unstable();
        assert_eq!(got, vec![GpuId(2), GpuId(3)], "should pick the idle socket");
    }

    #[test]
    fn four_gpu_job_takes_the_whole_machine() {
        let m = power8_minsky();
        let oracle = bare(&m);
        let job = JobGraph::uniform(4, 3.0);
        let all: Vec<GpuId> = m.gpus().collect();
        let g = drb_map(&job, &all, &oracle, UtilityWeights::default()).unwrap();
        let mut got = g.clone();
        got.sort_unstable();
        assert_eq!(got, all);
    }

    #[test]
    fn single_task_job_maps_to_one_gpu() {
        let m = power8_minsky();
        let oracle = bare(&m);
        let job = JobGraph::uniform(1, 0.0);
        let all: Vec<GpuId> = m.gpus().collect();
        let g = drb_map(&job, &all, &oracle, UtilityWeights::default()).unwrap();
        assert_eq!(g.len(), 1);
        assert!(all.contains(&g[0]));
    }

    #[test]
    fn fragmented_availability_still_maps() {
        let m = power8_minsky();
        let oracle = bare(&m);
        let job = JobGraph::uniform(2, 4.0);
        // Only one GPU per socket available: the dreaded Fig. 8 situation.
        let avail = [GpuId(1), GpuId(2)];
        let g = drb_map(&job, &avail, &oracle, UtilityWeights::default()).unwrap();
        let mut got = g.clone();
        got.sort_unstable();
        assert_eq!(got, vec![GpuId(1), GpuId(2)]);
        assert!(!m.is_packed(&got), "placement is necessarily spread");
    }

    #[test]
    fn insufficient_capacity_is_an_error() {
        let m = power8_minsky();
        let oracle = bare(&m);
        let job = JobGraph::uniform(3, 4.0);
        let avail = [GpuId(0), GpuId(1)];
        let err = drb_map(&job, &avail, &oracle, UtilityWeights::default()).unwrap_err();
        assert_eq!(
            err,
            MappingError::InsufficientGpus { requested: 3, available: 2 }
        );
    }

    #[test]
    fn assignments_are_distinct_gpus() {
        let m = gts_topo::symmetric_machine("m", 2, 4, gts_topo::LinkProfile::nvlink_dual());
        let oracle = bare(&m);
        for n in 1..=8usize {
            let job = JobGraph::uniform(n, 2.0);
            let all: Vec<GpuId> = m.gpus().collect();
            let g = drb_map(&job, &all, &oracle, UtilityWeights::default()).unwrap();
            let mut sorted = g.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), n, "duplicate GPUs for n={n}: {g:?}");
        }
    }

    #[test]
    fn pipeline_job_splits_at_a_chain_boundary() {
        // A 4-stage pipeline on a 4-GPU Minsky must cut exactly one chain
        // edge at the socket boundary: consecutive stages stay together.
        let m = power8_minsky();
        let oracle = bare(&m);
        let job = JobGraph::pipeline(4, 4.0);
        let all: Vec<GpuId> = m.gpus().collect();
        let g = drb_map(&job, &all, &oracle, UtilityWeights::default()).unwrap();
        let mut cross_edges = 0;
        for (i, j, _) in job.edges() {
            if m.socket_of(g[i]) != m.socket_of(g[j]) {
                cross_edges += 1;
            }
        }
        assert_eq!(cross_edges, 1, "mapping {g:?} cuts {cross_edges} chain edges");
    }

    #[test]
    fn ring_job_cuts_at_most_two_edges() {
        let m = power8_minsky();
        let oracle = bare(&m);
        let job = JobGraph::ring(4, 4.0);
        let all: Vec<GpuId> = m.gpus().collect();
        let g = drb_map(&job, &all, &oracle, UtilityWeights::default()).unwrap();
        let cross = job
            .edges()
            .filter(|&(i, j, _)| m.socket_of(g[i]) != m.socket_of(g[j]))
            .count();
        assert!(cross <= 2, "a 4-ring over 2 sockets needs at most 2 cuts, got {cross}");
    }

    #[test]
    fn three_tasks_on_eight_gpus_stay_on_one_socket() {
        let m = gts_topo::symmetric_machine("m", 2, 4, gts_topo::LinkProfile::nvlink_dual());
        let oracle = bare(&m);
        let job = JobGraph::uniform(3, 4.0);
        let all: Vec<GpuId> = m.gpus().collect();
        let g = drb_map(&job, &all, &oracle, UtilityWeights::default()).unwrap();
        assert!(m.is_packed(&g), "3 tasks fit a 4-GPU socket: {g:?}");
    }
}
