//! Equations 1–5: the objective function and job utility (§4.3).
//!
//! The paper's Eq. 2 (`U = αcc/t + αb/I + αd/ω`) leaves units open; as laid
//! out in DESIGN.md §2 we implement the normalized form — every component
//! lies in [0, 1], 1 is ideal — so a job's `min_utility` threshold (Table 1:
//! 0.3 / 0.5) has a stable meaning:
//!
//! * `u_cc` — `best_cost / actual_cost` (Eq. 3 costs), 1 when the job got
//!   the closest GPUs physically possible, → 0 as the placement spreads;
//! * `u_interference` — the Eq. 4 mean of `solo/collocated` ratios, 1 when
//!   nothing interferes;
//! * `u_domains` — 1 minus the fraction of extra allocation domains the job
//!   spans (the job-level fragmentation reading of Eq. 5; the system-level
//!   reading is [`eq5_fragmentation`] and steers Algorithm 3's side choice).

use serde::{Deserialize, Serialize};

/// The α weights of Eq. 1 / Eq. 2. They must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilityWeights {
    /// Weight of the communication-cost term (αcc).
    pub cc: f64,
    /// Weight of the interference term (αb).
    pub b: f64,
    /// Weight of the fragmentation term (αd).
    pub d: f64,
}

impl UtilityWeights {
    /// Builds weights, validating the Eq. 1 constraint `αcc + αb + αd = 1`.
    pub fn new(cc: f64, b: f64, d: f64) -> Result<Self, String> {
        let sum = cc + b + d;
        if (sum - 1.0).abs() > 1e-9 {
            return Err(format!("utility weights must sum to 1, got {sum}"));
        }
        if cc < 0.0 || b < 0.0 || d < 0.0 {
            return Err("utility weights must be non-negative".into());
        }
        Ok(Self { cc, b, d })
    }
}

impl Default for UtilityWeights {
    /// "We set equal weights (0.33) to the parameters of the utility
    /// function" (§5.2.1).
    fn default() -> Self {
        Self { cc: 1.0 / 3.0, b: 1.0 / 3.0, d: 1.0 / 3.0 }
    }
}

/// Eq. 3: the communication cost of an allocation — the sum of pairwise
/// shortest-path distances over all unordered GPU pairs, supplied through a
/// distance closure so it works for machines and clusters alike.
pub fn eq3_comm_cost<F>(n: usize, mut distance: F) -> f64
where
    F: FnMut(usize, usize) -> f64,
{
    let mut total = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            total += distance(i, j);
        }
    }
    total
}

/// Eq. 4: average interference over this job and its co-runners, each entry
/// being `solo_time / collocation_time ∈ (0, 1]`. Returns 1 for an empty
/// slice (a solo job on an idle machine).
pub fn eq4_interference(ratios: &[f64]) -> f64 {
    if ratios.is_empty() {
        return 1.0;
    }
    debug_assert!(ratios.iter().all(|r| (0.0..=1.0 + 1e-9).contains(r)));
    ratios.iter().sum::<f64>() / ratios.len() as f64
}

/// Eq. 5: system fragmentation — the mean over sockets of
/// `free_gpus / total_gpus`. 0 when every GPU is allocated, 1 when all are
/// free.
pub fn eq5_fragmentation(sockets: &[(u32, u32)]) -> f64 {
    if sockets.is_empty() {
        return 0.0;
    }
    let sum: f64 = sockets
        .iter()
        .map(|&(free, total)| {
            debug_assert!(free <= total && total > 0);
            f64::from(free) / f64::from(total)
        })
        .sum();
    sum / sockets.len() as f64
}

/// The normalized components of a placement's utility.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilityComponents {
    /// Communication quality: `best_cost / actual_cost` ∈ (0, 1].
    pub u_cc: f64,
    /// Interference quality: Eq. 4 value ∈ (0, 1].
    pub u_interference: f64,
    /// Domain-spanning quality ∈ [0, 1].
    pub u_domains: f64,
}

impl UtilityComponents {
    /// Communication quality from Eq. 3 costs. Jobs without communication
    /// (single GPU → zero best cost) score a perfect 1.
    pub fn u_cc_from_costs(best_cost: f64, actual_cost: f64) -> f64 {
        if actual_cost <= 0.0 {
            1.0
        } else {
            (best_cost / actual_cost).clamp(0.0, 1.0)
        }
    }

    /// Domain quality from the number of allocation domains (sockets) the
    /// job spans, out of `total` domains on the host. Spanning one domain is
    /// perfect; spanning all of them scores 0.
    pub fn u_domains_from_span(spanned: usize, total: usize) -> f64 {
        if total <= 1 || spanned <= 1 {
            return 1.0;
        }
        let extra = (spanned - 1) as f64;
        let max_extra = (total - 1) as f64;
        (1.0 - extra / max_extra).clamp(0.0, 1.0)
    }
}

/// The job utility `U` compared against `min_utility` (the SLO proxy).
pub fn utility(c: UtilityComponents, w: UtilityWeights) -> f64 {
    w.cc * c.u_cc + w.b * c.u_interference + w.d * c.u_domains
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_weights_are_equal_thirds() {
        let w = UtilityWeights::default();
        assert!((w.cc + w.b + w.d - 1.0).abs() < 1e-12);
        assert!((w.cc - w.b).abs() < 1e-12);
    }

    #[test]
    fn weight_validation() {
        assert!(UtilityWeights::new(0.5, 0.3, 0.2).is_ok());
        assert!(UtilityWeights::new(0.5, 0.5, 0.5).is_err());
        assert!(UtilityWeights::new(1.2, -0.1, -0.1).is_err());
    }

    #[test]
    fn eq3_sums_pairs() {
        // Distances: d(0,1)=1, d(0,2)=22, d(1,2)=22.
        let d = |i: usize, j: usize| if i == 0 && j == 1 { 1.0 } else { 22.0 };
        assert_eq!(eq3_comm_cost(3, d), 45.0);
        assert_eq!(eq3_comm_cost(1, d), 0.0);
        assert_eq!(eq3_comm_cost(0, d), 0.0);
    }

    #[test]
    fn eq4_mean_and_identity() {
        assert_eq!(eq4_interference(&[]), 1.0);
        assert_eq!(eq4_interference(&[1.0, 1.0]), 1.0);
        assert!((eq4_interference(&[1.0, 0.5]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn eq5_fragmentation_range() {
        assert_eq!(eq5_fragmentation(&[(0, 2), (0, 2)]), 0.0);
        assert_eq!(eq5_fragmentation(&[(2, 2), (2, 2)]), 1.0);
        assert!((eq5_fragmentation(&[(1, 2), (0, 2)]) - 0.25).abs() < 1e-12);
        assert_eq!(eq5_fragmentation(&[]), 0.0);
    }

    #[test]
    fn u_cc_perfect_for_packed_and_single() {
        assert_eq!(UtilityComponents::u_cc_from_costs(1.0, 1.0), 1.0);
        assert_eq!(UtilityComponents::u_cc_from_costs(0.0, 0.0), 1.0);
        let spread = UtilityComponents::u_cc_from_costs(1.0, 22.0);
        assert!((spread - 1.0 / 22.0).abs() < 1e-12);
    }

    #[test]
    fn u_domains_penalizes_spanning() {
        assert_eq!(UtilityComponents::u_domains_from_span(1, 2), 1.0);
        assert_eq!(UtilityComponents::u_domains_from_span(2, 2), 0.0);
        assert_eq!(UtilityComponents::u_domains_from_span(2, 4), 1.0 - 1.0 / 3.0);
        assert_eq!(UtilityComponents::u_domains_from_span(1, 1), 1.0);
    }

    #[test]
    fn ideal_placement_scores_one() {
        let c = UtilityComponents { u_cc: 1.0, u_interference: 1.0, u_domains: 1.0 };
        assert!((utility(c, UtilityWeights::default()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fig8_job3_cross_socket_falls_below_half() {
        // The DESIGN.md §2 anchor: a comm-heavy 2-GPU job offered one GPU
        // per socket on a busy Minsky must score below its 0.5 threshold.
        let c = UtilityComponents {
            u_cc: 1.0 / 22.0,
            u_interference: 0.74,
            u_domains: 0.0,
        };
        let u = utility(c, UtilityWeights::default());
        assert!(u < 0.5, "got {u}");
        assert!(u > 0.2, "should not be absurdly low: {u}");
    }

    #[test]
    fn weights_shift_the_score() {
        let c = UtilityComponents { u_cc: 0.0, u_interference: 1.0, u_domains: 1.0 };
        let comm_heavy = UtilityWeights::new(0.8, 0.1, 0.1).unwrap();
        let frag_heavy = UtilityWeights::new(0.1, 0.1, 0.8).unwrap();
        assert!(utility(c, comm_heavy) < utility(c, frag_heavy));
    }
}
