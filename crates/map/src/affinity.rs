//! GPU affinity graphs — the partitioner's view of the physical topology.
//!
//! `physicalGraphBiPartition()` must split the available GPUs into two
//! topologically coherent halves (same socket together, same machine
//! together). Min-cut does that when edges encode *affinity* (closeness)
//! rather than distance: we use `affinity(i, j) = 1 / distance(i, j)`, so a
//! balanced minimum cut severs the weak long-distance couplings (the
//! inter-socket bus, the network) and keeps NVLink cliques intact.

use gts_topo::{GpuId, MachineTopology};

/// Dense symmetric affinity graph over an arbitrary set of GPUs.
#[derive(Debug, Clone)]
pub struct AffinityGraph {
    /// The GPU each vertex stands for, in vertex order.
    pub gpus: Vec<GpuId>,
    n: usize,
    weights: Vec<f64>,
}

impl AffinityGraph {
    /// Builds the affinity graph for `gpus` (a subset of one machine).
    pub fn from_machine(machine: &MachineTopology, gpus: &[GpuId]) -> Self {
        let n = gpus.len();
        let mut weights = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = machine.distance(gpus[i], gpus[j]);
                debug_assert!(d > 0.0, "distinct GPUs are at positive distance");
                let a = 1.0 / d;
                weights[i * n + j] = a;
                weights[j * n + i] = a;
            }
        }
        Self { gpus: gpus.to_vec(), n, weights }
    }

    /// Builds an affinity graph from an explicit distance closure (used for
    /// cluster-wide sets where distances come from
    /// [`gts_topo::ClusterTopology`]).
    pub fn from_distances<F>(gpus: Vec<GpuId>, mut distance: F) -> Self
    where
        F: FnMut(usize, usize) -> f64,
    {
        let n = gpus.len();
        let mut weights = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = distance(i, j);
                assert!(d > 0.0, "distinct vertices need positive distance");
                let a = 1.0 / d;
                weights[i * n + j] = a;
                weights[j * n + i] = a;
            }
        }
        Self { gpus, n, weights }
    }

    /// Like [`AffinityGraph::from_distances`], but filling previously
    /// allocated buffers instead of allocating. The DRB recursion builds
    /// one graph per level, so reusing the `n × n` matrix removes the
    /// largest allocation from the mapper's hot path; buffers come back
    /// out through [`AffinityGraph::into_buffers`].
    pub fn from_distances_reusing<F>(
        source: &[GpuId],
        mut gpus: Vec<GpuId>,
        mut weights: Vec<f64>,
        mut distance: F,
    ) -> Self
    where
        F: FnMut(usize, usize) -> f64,
    {
        gpus.clear();
        gpus.extend_from_slice(source);
        let n = gpus.len();
        weights.clear();
        weights.resize(n * n, 0.0);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = distance(i, j);
                assert!(d > 0.0, "distinct vertices need positive distance");
                let a = 1.0 / d;
                weights[i * n + j] = a;
                weights[j * n + i] = a;
            }
        }
        Self { gpus, n, weights }
    }

    /// Decomposes the graph into its `(gpus, weights)` buffers so a caller
    /// can reuse the allocations for the next build.
    pub fn into_buffers(self) -> (Vec<GpuId>, Vec<f64>) {
        (self.gpus, self.weights)
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Affinity between vertices `i` and `j` (0 on the diagonal).
    #[inline]
    pub fn affinity(&self, i: usize, j: usize) -> f64 {
        self.weights[i * self.n + j]
    }

    /// Sum of affinities between vertex `i` and every vertex in `side`.
    pub fn affinity_to_side(&self, i: usize, side: &[bool], value: bool) -> f64 {
        (0..self.n)
            .filter(|&j| j != i && side[j] == value)
            .map(|j| self.affinity(i, j))
            .sum()
    }

    /// Total affinity crossing a bipartition — the FM cut objective.
    pub fn cut(&self, side: &[bool]) -> f64 {
        assert_eq!(side.len(), self.n);
        let mut total = 0.0;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if side[i] != side[j] {
                    total += self.affinity(i, j);
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_topo::power8_minsky;

    fn all_gpus(m: &MachineTopology) -> Vec<GpuId> {
        m.gpus().collect()
    }

    #[test]
    fn affinity_is_inverse_distance() {
        let m = power8_minsky();
        let g = AffinityGraph::from_machine(&m, &all_gpus(&m));
        assert_eq!(g.affinity(0, 1), 1.0); // same socket, distance 1
        assert!((g.affinity(0, 2) - 1.0 / 22.0).abs() < 1e-12); // cross socket
        assert_eq!(g.affinity(1, 0), g.affinity(0, 1));
        assert_eq!(g.affinity(2, 2), 0.0);
    }

    #[test]
    fn socket_split_is_the_minimum_balanced_cut() {
        let m = power8_minsky();
        let g = AffinityGraph::from_machine(&m, &all_gpus(&m));
        let socket_cut = g.cut(&[true, true, false, false]);
        let mixed_cut = g.cut(&[true, false, true, false]);
        let other_mixed = g.cut(&[true, false, false, true]);
        assert!(socket_cut < mixed_cut);
        assert!(socket_cut < other_mixed);
    }

    #[test]
    fn affinity_to_side_sums_correctly() {
        let m = power8_minsky();
        let g = AffinityGraph::from_machine(&m, &all_gpus(&m));
        let side = [true, true, false, false];
        // GPU0 to its own side: just GPU1.
        assert_eq!(g.affinity_to_side(0, &side, true), 1.0);
        // GPU0 to the far side: GPU2 + GPU3.
        assert!((g.affinity_to_side(0, &side, false) - 2.0 / 22.0).abs() < 1e-12);
    }

    #[test]
    fn subset_graphs_reindex_vertices() {
        let m = power8_minsky();
        let g = AffinityGraph::from_machine(&m, &[GpuId(1), GpuId(3)]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.gpus, vec![GpuId(1), GpuId(3)]);
        assert!((g.affinity(0, 1) - 1.0 / 22.0).abs() < 1e-12);
    }

    #[test]
    fn from_distances_closure() {
        let g = AffinityGraph::from_distances(vec![GpuId(0), GpuId(1), GpuId(2)], |i, j| {
            ((i + j) * 2) as f64
        });
        assert!((g.affinity(0, 1) - 0.5).abs() < 1e-12);
        assert!((g.affinity(1, 2) - 1.0 / 6.0).abs() < 1e-12);
    }
}
