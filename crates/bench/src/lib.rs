//! # gts-bench — the per-figure reproduction harness
//!
//! One module per table/figure of the paper's evaluation (see DESIGN.md §3
//! for the experiment index). Each module exposes a `run()` returning
//! structured rows plus a `render()` producing the aligned text table the
//! `repro` binary prints; integration tests assert the paper's qualitative
//! claims against the structured form.

#![warn(missing_docs)]

pub mod appendix;
pub mod experiments;
pub mod parallel;
pub mod perfbench;
pub mod table;

pub use table::TextTable;
