//! `gts` — the Appendix A.3 entry point: run the system from configuration
//! files, in simulation or prototype mode.
//!
//! ```text
//! gts --sample-config > sys-config.json   # emit an editable sample
//! gts sys-config.json                     # execute it
//! gts sys-config.json --json              # machine-readable reports
//! ```

use gts_bench::appendix::SysConfig;
use gts_bench::table::f;
use gts_bench::TextTable;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--sample-config") {
        println!("{}", SysConfig::sample().to_json());
        return ExitCode::SUCCESS;
    }
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("usage: gts <sys-config.json> [--json] | gts --sample-config");
        return ExitCode::FAILURE;
    };
    let config = match SysConfig::load(Path::new(path)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let reports = match config.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    if args.iter().any(|a| a == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&reports).expect("reports serialize")
        );
        return ExitCode::SUCCESS;
    }

    let mut t = TextTable::new(
        format!(
            "gts — {} mode, {} machine(s)",
            if config.simulation { "simulation" } else { "prototype" },
            config.machines
        ),
        &[
            "policy",
            "completed",
            "makespan (s)",
            "mean wait (s)",
            "mean QoS",
            "SLO viol.",
            "GPU util.",
        ],
    );
    for r in &reports {
        t.row(vec![
            r.policy.to_string(),
            r.completed.to_string(),
            f(r.makespan_s, 1),
            f(r.mean_wait_s, 1),
            f(r.mean_qos_slowdown, 3),
            r.slo_violations.to_string(),
            format!("{:.1}%", r.gpu_utilization * 100.0),
        ]);
    }
    print!("{t}");
    ExitCode::SUCCESS
}
