//! `gts` — the Appendix A.3 entry point: run the system from configuration
//! files, in simulation or prototype mode.
//!
//! ```text
//! gts --sample-config > sys-config.json   # emit an editable sample
//! gts sys-config.json                     # execute it
//! gts sys-config.json --json              # machine-readable reports
//! gts trace --seed 7 --policy topo-aware-p
//!                                         # replay a seeded workload and
//!                                         # print every placement decision
//! gts bench [--smoke] [--out BENCH_sched.json]
//!                                         # microbench the placement
//!                                         # engine and emit JSON
//! gts bench scale-curve [--smoke] [--out BENCH_sched.json]
//!                                         # sweep cluster sizes under the
//!                                         # sharded scheduler and merge
//!                                         # machines-vs-decision-latency
//!                                         # points into the report
//! ```

use gts_bench::appendix::{AlgoConfig, SysConfig};
use gts_bench::table::f;
use gts_bench::TextTable;
use gts_core::prelude::*;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--sample-config") {
        println!("{}", SysConfig::sample().to_json());
        return ExitCode::SUCCESS;
    }
    if args.first().map(String::as_str) == Some("trace") {
        return run_trace(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("bench") {
        return run_bench(&args[1..]);
    }
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("usage: gts <sys-config.json> [--json] | gts --sample-config");
        return ExitCode::FAILURE;
    };
    let config = match SysConfig::load(Path::new(path)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let reports = match config.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    if args.iter().any(|a| a == "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&reports).expect("reports serialize")
        );
        return ExitCode::SUCCESS;
    }

    let mut t = TextTable::new(
        format!(
            "gts — {} mode, {} machine(s)",
            if config.simulation { "simulation" } else { "prototype" },
            config.machines
        ),
        &[
            "policy",
            "completed",
            "makespan (s)",
            "mean wait (s)",
            "mean QoS",
            "SLO viol.",
            "GPU util.",
        ],
    );
    for r in &reports {
        t.row(vec![
            r.policy.to_string(),
            r.completed.to_string(),
            f(r.makespan_s, 1),
            f(r.mean_wait_s, 1),
            f(r.mean_qos_slowdown, 3),
            r.slo_violations.to_string(),
            format!("{:.1}%", r.gpu_utilization * 100.0),
        ]);
    }
    print!("{t}");
    ExitCode::SUCCESS
}

/// `gts bench`: run the placement-engine microbench suite and write
/// `BENCH_sched.json`. `--smoke` shrinks sample counts for CI.
fn run_bench(args: &[String]) -> ExitCode {
    if args.first().map(String::as_str) == Some("scale-curve") {
        return run_scale_curve(&args[1..]);
    }
    let mut smoke = false;
    let mut out = "BENCH_sched.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(v) => out = v.clone(),
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!("usage: gts bench [scale-curve] [--smoke] [--out BENCH_sched.json]");
                return ExitCode::FAILURE;
            }
        }
    }
    let report = gts_bench::perfbench::run(smoke);
    println!(
        "arrival/topo64 speedup (sequential/engine, {} thread(s)): {:.2}x{}",
        report.threads,
        report.arrival_speedup,
        if smoke { "  [smoke — not comparable]" } else { "" },
    );
    println!(
        "sim/large event-loop speedup (reference/incremental): {:.2}x{}",
        report.sim_loop_speedup,
        if smoke { "  [smoke — not comparable]" } else { "" },
    );
    println!(
        "arrival/topo256 warm-cache speedup (cold/warm): {:.2}x{}",
        report.warm_arrival_speedup,
        if smoke { "  [smoke — not comparable]" } else { "" },
    );
    println!(
        "sim/large placement-cache speedup (incremental/cached): {:.2}x, \
         hit rate {:.3}{}",
        report.sim_cache_speedup,
        report.eval_cache_hit_rate,
        if smoke { "  [smoke — not comparable]" } else { "" },
    );
    println!(
        "sim/huge decision-latency speedup (single-shard/sharded): {:.2}x{}",
        report.huge_decision_speedup,
        if smoke { "  [smoke — not comparable]" } else { "" },
    );
    println!(
        "phase shares of instrumented sim/large_cached run: decision {:.1}%, \
         refresh {:.1}%, heap {:.1}%, drain {:.1}%",
        report.phase_shares.decision * 100.0,
        report.phase_shares.refresh * 100.0,
        report.phase_shares.heap * 100.0,
        report.phase_shares.drain * 100.0,
    );
    if let Err(e) = std::fs::write(&out, report.to_json() + "\n") {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}

/// `gts bench scale-curve`: sweep cluster sizes under the sharded
/// scheduler and merge the machines-vs-decision-latency points into an
/// existing `BENCH_sched.json` (which must have been written by
/// `gts bench` first — the rest of the report is preserved).
fn run_scale_curve(args: &[String]) -> ExitCode {
    let mut smoke = false;
    let mut out = "BENCH_sched.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(v) => out = v.clone(),
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!("usage: gts bench scale-curve [--smoke] [--out BENCH_sched.json]");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut report = match std::fs::read_to_string(&out)
        .map_err(|e| format!("cannot read {out}: {e} (run `gts bench` first)"))
        .and_then(|json| gts_bench::perfbench::BenchReport::from_json(&json))
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    report.scale_curve = gts_bench::perfbench::scale_curve(smoke);
    for p in &report.scale_curve {
        println!(
            "{:>6} machines / {:>4} shard(s): mean decision {:>9.1} µs over {} jobs \
             ({:.1} ms wall, {} replay hit(s), {} shard(s) re-evaluated){}",
            p.machines,
            p.shards,
            p.mean_decision_ns as f64 / 1_000.0,
            p.jobs,
            p.wall_ns as f64 / 1e6,
            p.replay_hits,
            p.replay_shards_reeval,
            if smoke { "  [smoke — not comparable]" } else { "" },
        );
    }
    if let Err(e) = std::fs::write(&out, report.to_json() + "\n") {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}

/// `gts trace`: replay a seeded workload with decision tracing on and
/// pretty-print every Algorithm 1 decision with its Eq. 2 breakdown.
fn run_trace(args: &[String]) -> ExitCode {
    let mut seed = 42u64;
    let mut jobs = 40usize;
    let mut machines = 4usize;
    let mut policy = "topo-aware-p".to_string();
    let mut json = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let parsed = match arg.as_str() {
            "--seed" => value("--seed").and_then(|v| {
                v.parse().map(|n| seed = n).map_err(|e| format!("--seed: {e}"))
            }),
            "--jobs" => value("--jobs").and_then(|v| {
                v.parse().map(|n| jobs = n).map_err(|e| format!("--jobs: {e}"))
            }),
            "--machines" => value("--machines").and_then(|v| {
                v.parse()
                    .map(|n| machines = n)
                    .map_err(|e| format!("--machines: {e}"))
            }),
            "--policy" => value("--policy").map(|v| policy = v),
            "--json" => {
                json = true;
                Ok(())
            }
            other => Err(format!("unknown argument '{other}'")),
        };
        if let Err(e) = parsed {
            eprintln!("{e}");
            eprintln!(
                "usage: gts trace [--seed N] [--jobs N] [--machines N] \
                 [--policy fcfs|bf|topo-aware|topo-aware-p] [--json]"
            );
            return ExitCode::FAILURE;
        }
    }

    let policy = match (AlgoConfig { policy, weights: None }).resolve() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, machines));
    let workload = WorkloadGenerator::with_defaults(seed).generate(jobs);
    let result = Simulation::new(cluster, profiles, SimConfig::new(policy).with_trace())
        .run(workload);

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&result.trace).expect("trace serializes")
        );
        return ExitCode::SUCCESS;
    }

    println!(
        "gts trace — {} over {jobs} jobs (seed {seed}) on {machines} machine(s)",
        result.policy
    );
    for event in &result.trace {
        print_event(event);
    }
    let placed = result
        .trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::Placed { .. }))
        .count();
    let postponed = result
        .trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::Postponed { .. }))
        .count();
    println!(
        "{} events: {placed} placements, {postponed} postponements, \
         {} SLO violation(s), makespan {}s",
        result.trace.len(),
        result.slo_violations,
        f(result.makespan_s, 1),
    );
    ExitCode::SUCCESS
}

fn print_event(event: &TraceEvent) {
    match event {
        TraceEvent::Arrived { t_s, job } => {
            println!("[{:>9}s] {job} arrived", f(*t_s, 1));
        }
        TraceEvent::Evaluated { t_s, job, candidates } => {
            println!("[{:>9}s] {job} evaluated {} candidate(s):", f(*t_s, 1), candidates.len());
            for c in candidates {
                let gpus: Vec<String> = c.gpus.iter().map(|g| g.to_string()).collect();
                println!(
                    "             {:<4} gpus=[{}] u_cc={} u_b={} u_d={} U={} frag={}  {}",
                    c.machine.to_string(),
                    gpus.join(","),
                    f(c.u_cc, 3),
                    f(c.u_b, 3),
                    f(c.u_d, 3),
                    f(c.utility, 3),
                    f(c.frag_after, 3),
                    c.outcome,
                );
            }
        }
        TraceEvent::Placed { t_s, job, gpus, utility, slo_violated } => {
            let gpus: Vec<String> = gpus.iter().map(|g| g.to_string()).collect();
            println!(
                "[{:>9}s] {job} PLACED on [{}] U={}{}",
                f(*t_s, 1),
                gpus.join(","),
                f(*utility, 3),
                if *slo_violated { "  ** SLO VIOLATION **" } else { "" },
            );
        }
        TraceEvent::Postponed { t_s, job, utility } => {
            println!(
                "[{:>9}s] {job} postponed (best U={} below threshold)",
                f(*t_s, 1),
                f(*utility, 3),
            );
        }
        TraceEvent::Waiting { t_s, job } => {
            println!("[{:>9}s] {job} waiting (no feasible GPUs)", f(*t_s, 1));
        }
        TraceEvent::Released { t_s, job } => {
            println!("[{:>9}s] {job} released its GPUs", f(*t_s, 1));
        }
        TraceEvent::Spilled { t_s, job, machines } => {
            let ms: Vec<String> = machines.iter().map(|m| m.to_string()).collect();
            println!("[{:>9}s] {job} spilled across [{}]", f(*t_s, 1), ms.join(","));
        }
        TraceEvent::MachineFailed { t_s, machine } => {
            println!("[{:>9}s] {machine} FAILED", f(*t_s, 1));
        }
        TraceEvent::MachineRecovered { t_s, machine } => {
            println!("[{:>9}s] {machine} recovered", f(*t_s, 1));
        }
        TraceEvent::EvalCacheStats { t_s, hits, misses, evictions } => {
            let total = hits + misses;
            let rate = if total == 0 { 0.0 } else { *hits as f64 / total as f64 };
            println!(
                "[{:>9}s] placement cache: {hits} hit(s), {misses} miss(es), \
                 {evictions} eviction(s) ({} hit rate)",
                f(*t_s, 1),
                f(rate, 3),
            );
        }
        TraceEvent::DecisionReplayStats { t_s, hits, shards_reeval, full_fallbacks } => {
            println!(
                "[{:>9}s] decision replay: {hits} hit(s), {shards_reeval} shard(s) \
                 re-evaluated, {full_fallbacks} full fallback(s)",
                f(*t_s, 1),
            );
        }
    }
}
