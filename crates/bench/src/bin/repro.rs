//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <experiment> [options]
//!
//! experiments:
//!   table1      the prototype workload configuration
//!   fig3        execution-time breakdown (compute vs communication)
//!   fig4        pack vs spread speedup across batch sizes
//!   fig5        NVLink bandwidth traces (AlexNet, batch 1/4/64/128)
//!   fig6        collocation slowdown matrix
//!   fig7        the physical topology graphs as Graphviz DOT
//!   fig8        the 6-job prototype scenario under all four policies
//!   fig9        prototype vs simulation validation
//!   fig10       scenario 1: 100 jobs / 5 machines
//!   fig11       scenario 2: 10k jobs / 1k machines  [--scale N to shrink]
//!   overhead    scheduler decision-latency comparison (§5.5.3)
//!   pcie        NVLink vs PCIe machine speedups (§3.2)
//!   ablation    utility-weight sweep (A1)
//!   modelpar    model-parallel placement sensitivity (M1, ours)
//!   hetero      heterogeneous Minsky+DGX-1 fleet (H1, ours)
//!   spill       disaggregated multi-node jobs on a racked cluster (D1, ours)
//!   failures    resilience to machine failures (F1, ours)
//!   validate    the reproduction scorecard: every paper claim, PASS/FAIL
//!   all         everything above (fig11 at 1/10 scale)
//!
//! options: --scale N (fig11), --json (fig10/fig11 machine-readable)
//! ```

use gts_bench::experiments as exp;
use std::env;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: repro <table1|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|overhead|pcie|ablation|modelpar|hetero|all> [--scale N]\n\
     run `repro all` to regenerate every table and figure (fig11 scaled 1/10)."
}

fn wants_json(args: &[String]) -> bool {
    args.iter().any(|a| a == "--json")
}

fn parse_scale(args: &[String]) -> usize {
    args.iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let scale = parse_scale(&args);

    match cmd.as_str() {
        "table1" => print!("{}", exp::table1::render()),
        "fig3" => print!("{}", exp::fig3::render()),
        "fig4" => print!("{}", exp::fig4::render()),
        "fig5" => print!("{}", exp::fig5::render()),
        "fig6" => print!("{}", exp::fig6::render()),
        "fig7" => print!("{}", exp::fig7::render()),
        "fig8" => print!("{}", exp::fig8::render()),
        "fig9" => print!("{}", exp::fig9::render()),
        "fig10" => {
            if wants_json(&args) {
                let s = exp::fig10::run(100, 5, 1001);
                println!("{}", serde_json::to_string_pretty(&s).expect("serialize"));
            } else {
                print!("{}", exp::fig10::render());
            }
        }
        "fig11" => {
            if wants_json(&args) {
                let s = if scale <= 1 { exp::fig11::run_full() } else { exp::fig11::run_scaled(scale) };
                println!("{}", serde_json::to_string_pretty(&s).expect("serialize"));
            } else {
                print!("{}", exp::fig11::render(scale));
            }
        }
        "overhead" => print!("{}", exp::overhead::render(&[5, 50, 200], 40)),
        "pcie" => print!("{}", exp::pcie::render()),
        "ablation" => print!("{}", exp::ablation::render()),
        "modelpar" => print!("{}", exp::modelpar::render()),
        "hetero" => print!("{}", exp::hetero::render()),
        "spill" => print!("{}", exp::spill::render()),
        "failures" => print!("{}", exp::failures::render()),
        "validate" => print!("{}", exp::validate::render()),
        "all" => {
            print!("{}", exp::table1::render());
            println!();
            print!("{}", exp::fig3::render());
            println!();
            print!("{}", exp::fig4::render());
            println!();
            print!("{}", exp::fig5::render());
            println!();
            print!("{}", exp::fig6::render());
            println!();
            print!("{}", exp::fig8::render());
            println!();
            print!("{}", exp::fig9::render());
            println!();
            print!("{}", exp::fig10::render());
            println!();
            print!("{}", exp::fig11::render(if scale == 1 { 10 } else { scale }));
            println!();
            print!("{}", exp::overhead::render(&[5, 50, 200], 40));
            println!();
            print!("{}", exp::pcie::render());
            println!();
            print!("{}", exp::ablation::render());
            println!();
            print!("{}", exp::modelpar::render());
            println!();
            print!("{}", exp::hetero::render());
            println!();
            print!("{}", exp::spill::render());
            println!();
            print!("{}", exp::failures::render());
            println!();
            print!("{}", exp::validate::render());
        }
        other => {
            eprintln!("unknown experiment '{other}'\n{}", usage());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
