//! The Appendix A.3 experiment workflow.
//!
//! The paper's artifact is driven by configuration files: a system config
//! choosing simulation or prototype mode (`etc/configs/sys-config.ini`),
//! one config per scheduling algorithm, a workload manifest, and a single
//! `python main.py` entry point. This module reproduces that workflow with
//! JSON configs (serde is already a dependency; an INI parser is not) and
//! the `gts` binary as the entry point. "Samples of all configuration
//! files are provided in the source code" — [`SysConfig::sample`] is ours.

use gts_core::job::scenario::table1;
use gts_core::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// Which machine model populates the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum MachineKind {
    /// IBM Power8 "Minsky" (the paper's testbed).
    Power8Minsky,
    /// NVIDIA DGX-1.
    Dgx1,
    /// PCIe/K80 Power8 variant.
    Power8PcieK80,
    /// NVIDIA DGX-2 (NVSwitch, 16 GPUs).
    Dgx2,
    /// IBM Power9 AC922 (2 × 3 V100 over tri-lane NVLink).
    Power9Ac922,
}

impl MachineKind {
    /// Builds one machine of this kind.
    pub fn build(self) -> MachineTopology {
        match self {
            MachineKind::Power8Minsky => power8_minsky(),
            MachineKind::Dgx1 => dgx1(),
            MachineKind::Power8PcieK80 => power8_pcie_k80(),
            MachineKind::Dgx2 => gts_core::topo::dgx2(),
            MachineKind::Power9Ac922 => gts_core::topo::power9_ac922(),
        }
    }
}

/// Where jobs come from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum WorkloadSource {
    /// Load a [`Trace`] JSON file.
    TraceFile {
        /// Path to the trace.
        path: String,
    },
    /// Generate with the §5.3 generator.
    Generate {
        /// Number of jobs.
        jobs: usize,
        /// RNG seed.
        seed: u64,
    },
    /// The built-in Table 1 scenario.
    Table1,
}

/// One scheduling algorithm's configuration (the per-algorithm
/// `algo-name-config.ini` of the appendix).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlgoConfig {
    /// Policy to run.
    pub policy: String,
    /// Eq. 2 weights; defaults to the paper's equal thirds.
    #[serde(default)]
    pub weights: Option<[f64; 3]>,
}

impl AlgoConfig {
    /// Resolves into a [`Policy`].
    pub fn resolve(&self) -> Result<Policy, ConfigError> {
        let kind = match self.policy.to_ascii_lowercase().as_str() {
            "fcfs" => PolicyKind::Fcfs,
            "bf" | "best-fit" | "bestfit" => PolicyKind::BestFit,
            "topo-aware" | "topoaware" => PolicyKind::TopoAware,
            "topo-aware-p" | "topoawarep" => PolicyKind::TopoAwareP,
            other => return Err(ConfigError::UnknownPolicy(other.to_string())),
        };
        let weights = match self.weights {
            None => UtilityWeights::default(),
            Some([cc, b, d]) => {
                UtilityWeights::new(cc, b, d).map_err(ConfigError::BadWeights)?
            }
        };
        Ok(Policy { kind, weights })
    }
}

/// The system configuration (the appendix's `sys-config.ini`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SysConfig {
    /// True → trace-driven simulation; false → the concurrent prototype
    /// runtime ("changing the parameter simulation to True or False").
    pub simulation: bool,
    /// Number of machines in the cluster.
    pub machines: usize,
    /// Machine model.
    pub machine_kind: MachineKind,
    /// Seed for the §5.1 profile-generation campaign; omitted → 42 (see
    /// [`SysConfig::profile_seed`]).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub profile_seed: Option<u64>,
    /// Prototype time compression (wall seconds per simulated second);
    /// omitted → 0.002 (see [`SysConfig::time_scale`]).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub time_scale: Option<f64>,
    /// Optional rack count; when set, machines are split evenly into racks
    /// (top-of-rack vs aggregation network tiers).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub racks: Option<usize>,
    /// Scripted operator cancellations, `(time_s, job_id)` pairs.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub cancellations: Vec<(f64, u64)>,
    /// Scripted machine failures (simulation mode), `(time_s, machine)`.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub machine_failures: Vec<(f64, u32)>,
    /// Algorithms to run, one system execution each ("if many are
    /// provided, the system will execute multiple runs").
    pub algorithms: Vec<AlgoConfig>,
    /// The workload.
    pub workload: WorkloadSource,
}

impl SysConfig {
    /// The profile-campaign seed, with the documented default of 42 when
    /// the config omits the field.
    pub fn profile_seed(&self) -> u64 {
        self.profile_seed.unwrap_or(42)
    }

    /// The prototype time compression, with the documented default of
    /// 0.002 when the config omits the field.
    pub fn time_scale(&self) -> f64 {
        self.time_scale.unwrap_or(0.002)
    }

    /// A ready-to-edit sample configuration.
    pub fn sample() -> Self {
        Self {
            simulation: true,
            machines: 1,
            machine_kind: MachineKind::Power8Minsky,
            profile_seed: Some(42),
            time_scale: Some(0.002),
            racks: None,
            cancellations: Vec::new(),
            machine_failures: Vec::new(),
            algorithms: vec![
                AlgoConfig { policy: "topo-aware-p".into(), weights: None },
                AlgoConfig { policy: "fcfs".into(), weights: None },
            ],
            workload: WorkloadSource::Table1,
        }
    }

    /// Parses a config from JSON text.
    pub fn from_json(text: &str) -> Result<Self, ConfigError> {
        serde_json::from_str(text).map_err(|e| ConfigError::Parse(e.to_string()))
    }

    /// Loads a config file.
    pub fn load(path: &Path) -> Result<Self, ConfigError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ConfigError::Io(format!("{}: {e}", path.display())))?;
        Self::from_json(&text)
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serialization cannot fail")
    }

    fn workload(&self) -> Result<Vec<JobSpec>, ConfigError> {
        match &self.workload {
            WorkloadSource::TraceFile { path } => {
                let trace = Trace::load(Path::new(path))
                    .map_err(|e| ConfigError::Io(format!("{path}: {e}")))?;
                Ok(trace.jobs)
            }
            WorkloadSource::Generate { jobs, seed } => {
                Ok(WorkloadGenerator::with_defaults(*seed).generate(*jobs))
            }
            WorkloadSource::Table1 => Ok(table1()),
        }
    }

    /// Runs every configured algorithm and reports results.
    pub fn run(&self) -> Result<Vec<RunReport>, ConfigError> {
        if self.machines == 0 {
            return Err(ConfigError::Invalid("machines must be positive".into()));
        }
        if self.algorithms.is_empty() {
            return Err(ConfigError::Invalid("no algorithms configured".into()));
        }
        let machine = self.machine_kind.build();
        let profiles = Arc::new(ProfileLibrary::generate(&machine, self.profile_seed()));
        let cluster = match self.racks {
            Some(racks) => {
                if racks == 0 || !self.machines.is_multiple_of(racks) {
                    return Err(ConfigError::Invalid(format!(
                        "{} machines do not divide evenly into {racks} racks",
                        self.machines
                    )));
                }
                Arc::new(ClusterTopology::homogeneous_racked(
                    machine,
                    racks,
                    self.machines / racks,
                ))
            }
            None => Arc::new(ClusterTopology::homogeneous(machine, self.machines)),
        };
        let jobs = self.workload()?;

        let mut reports = Vec::with_capacity(self.algorithms.len());
        for algo in &self.algorithms {
            let policy = algo.resolve()?;
            let report = if self.simulation {
                let config = SimConfig::new(policy).with_machine_failures(
                    self.machine_failures
                        .iter()
                        .map(|&(t, m)| (t, MachineId(m)))
                        .collect(),
                );
                let res = Simulation::new(
                    Arc::clone(&cluster),
                    Arc::clone(&profiles),
                    config,
                )
                .run(jobs.clone());
                RunReport {
                    policy: policy.kind,
                    mode: "simulation".into(),
                    completed: res.records.len(),
                    unplaceable: res.unplaceable.len(),
                    makespan_s: res.makespan_s,
                    mean_wait_s: res.mean_waiting_s(),
                    mean_qos_slowdown: res.mean_qos_slowdown(),
                    slo_violations: res.slo_violations,
                    gpu_utilization: res.gpu_utilization(cluster.n_gpus()),
                }
            } else {
                let mut config =
                    ProtoConfig::with_scale(policy, TimeScale::new(self.time_scale()));
                config.cancellations = self
                    .cancellations
                    .iter()
                    .map(|&(t, id)| (t, JobId(id)))
                    .collect();
                let res = Prototype::new(
                    Arc::clone(&cluster),
                    Arc::clone(&profiles),
                    config,
                )
                .run(jobs.clone());
                let mean_wait = if res.records.is_empty() {
                    0.0
                } else {
                    res.records.iter().map(|r| r.waiting_s()).sum::<f64>()
                        / res.records.len() as f64
                };
                let mean_qos = if res.records.is_empty() {
                    0.0
                } else {
                    res.records.iter().map(|r| r.qos_slowdown()).sum::<f64>()
                        / res.records.len() as f64
                };
                let gpu_seconds: f64 = res
                    .records
                    .iter()
                    .map(|r| (r.finished_at_s - r.placed_at_s) * r.gpus.len() as f64)
                    .sum();
                RunReport {
                    policy: policy.kind,
                    mode: "prototype".into(),
                    completed: res.records.len(),
                    unplaceable: 0,
                    makespan_s: res.makespan_s,
                    mean_wait_s: mean_wait,
                    mean_qos_slowdown: mean_qos,
                    slo_violations: res.slo_violations,
                    gpu_utilization: gpu_seconds
                        / (cluster.n_gpus() as f64 * res.makespan_s.max(1e-9)),
                }
            };
            reports.push(report);
        }
        Ok(reports)
    }
}

/// Summary of one algorithm's execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Policy executed.
    pub policy: PolicyKind,
    /// "simulation" or "prototype".
    pub mode: String,
    /// Jobs completed.
    pub completed: usize,
    /// Jobs that could never be placed.
    pub unplaceable: usize,
    /// Completion time of the last job.
    pub makespan_s: f64,
    /// Mean queue wait.
    pub mean_wait_s: f64,
    /// Mean QoS slowdown vs ideal.
    pub mean_qos_slowdown: f64,
    /// SLO violations.
    pub slo_violations: usize,
    /// Mean GPU utilization.
    pub gpu_utilization: f64,
}

/// Configuration-processing failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// JSON did not parse.
    Parse(String),
    /// File I/O failed.
    Io(String),
    /// Unknown policy name.
    UnknownPolicy(String),
    /// Weights failed validation.
    BadWeights(String),
    /// Semantically invalid configuration.
    Invalid(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Parse(e) => write!(f, "config parse error: {e}"),
            ConfigError::Io(e) => write!(f, "config I/O error: {e}"),
            ConfigError::UnknownPolicy(p) => write!(
                f,
                "unknown policy '{p}' (expected fcfs, bf, topo-aware or topo-aware-p)"
            ),
            ConfigError::BadWeights(e) => write!(f, "bad utility weights: {e}"),
            ConfigError::Invalid(e) => write!(f, "invalid config: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_config_round_trips_and_runs() {
        let sample = SysConfig::sample();
        let back = SysConfig::from_json(&sample.to_json()).unwrap();
        assert_eq!(sample, back);

        let reports = back.run().unwrap();
        assert_eq!(reports.len(), 2);
        let tap = &reports[0];
        let fcfs = &reports[1];
        assert_eq!(tap.policy, PolicyKind::TopoAwareP);
        assert_eq!(tap.completed, 6);
        assert_eq!(tap.slo_violations, 0);
        assert!(tap.makespan_s < fcfs.makespan_s);
    }

    #[test]
    fn omitted_seed_and_scale_fall_back_to_documented_defaults() {
        // Regression: these used to parse as 0/0.0 (the derive treated
        // `default = "path"` as plain `default`), which silently changed
        // the profile campaign and would zero out the prototype clock.
        let cfg_text = r#"{
            "simulation": true,
            "machines": 1,
            "machine_kind": "power8-minsky",
            "algorithms": [{"policy": "fcfs"}],
            "workload": "table1"
        }"#;
        let cfg = SysConfig::from_json(cfg_text).unwrap();
        assert_eq!(cfg.profile_seed(), 42);
        assert!((cfg.time_scale() - 0.002).abs() < 1e-12);
        // Explicit values still win.
        let explicit = SysConfig::sample();
        assert_eq!(explicit.profile_seed(), 42);
        let mut cfg = cfg;
        cfg.profile_seed = Some(7);
        cfg.time_scale = Some(0.5);
        assert_eq!(cfg.profile_seed(), 7);
        assert!((cfg.time_scale() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn generated_workload_source() {
        let mut cfg = SysConfig::sample();
        cfg.machines = 2;
        cfg.workload = WorkloadSource::Generate { jobs: 12, seed: 3 };
        cfg.algorithms = vec![AlgoConfig { policy: "bf".into(), weights: None }];
        let reports = cfg.run().unwrap();
        assert_eq!(reports[0].completed, 12);
        assert_eq!(reports[0].policy, PolicyKind::BestFit);
    }

    #[test]
    fn custom_weights_are_honored() {
        let cfg_text = r#"{
            "simulation": true,
            "machines": 1,
            "machine_kind": "power8-minsky",
            "algorithms": [{"policy": "topo-aware", "weights": [0.6, 0.2, 0.2]}],
            "workload": "table1"
        }"#;
        let cfg = SysConfig::from_json(cfg_text).unwrap();
        assert_eq!(cfg.algorithms[0].resolve().unwrap().weights.cc, 0.6);
        assert!(cfg.run().is_ok());
    }

    #[test]
    fn error_paths() {
        assert!(matches!(
            SysConfig::from_json("{oops"),
            Err(ConfigError::Parse(_))
        ));
        let bad_policy = AlgoConfig { policy: "lottery".into(), weights: None };
        assert!(matches!(
            bad_policy.resolve(),
            Err(ConfigError::UnknownPolicy(_))
        ));
        let bad_weights = AlgoConfig {
            policy: "fcfs".into(),
            weights: Some([0.9, 0.9, 0.9]),
        };
        assert!(matches!(
            bad_weights.resolve(),
            Err(ConfigError::BadWeights(_))
        ));
        let mut cfg = SysConfig::sample();
        cfg.machines = 0;
        assert!(matches!(cfg.run(), Err(ConfigError::Invalid(_))));
        cfg.machines = 1;
        cfg.algorithms.clear();
        assert!(matches!(cfg.run(), Err(ConfigError::Invalid(_))));
    }

    #[test]
    fn dgx1_cluster_config() {
        let mut cfg = SysConfig::sample();
        cfg.machine_kind = MachineKind::Dgx1;
        cfg.algorithms = vec![AlgoConfig { policy: "topo-aware-p".into(), weights: None }];
        let reports = cfg.run().unwrap();
        assert_eq!(reports[0].completed, 6);
        assert_eq!(reports[0].slo_violations, 0);
    }

    #[test]
    fn scripted_failures_and_cancellations_flow_through_the_config() {
        // Simulation mode with a machine failure.
        let mut cfg = SysConfig::sample();
        cfg.machines = 2;
        cfg.machine_failures = vec![(60.0, 0)];
        cfg.algorithms = vec![AlgoConfig { policy: "topo-aware-p".into(), weights: None }];
        let reports = cfg.run().unwrap();
        assert_eq!(reports[0].completed, 6, "all jobs survive via restarts");

        // Prototype mode with a cancellation.
        let mut cfg = SysConfig::sample();
        cfg.simulation = false;
        cfg.time_scale = Some(0.001);
        cfg.cancellations = vec![(40.0, 0)];
        cfg.algorithms = vec![AlgoConfig { policy: "fcfs".into(), weights: None }];
        let reports = cfg.run().unwrap();
        assert_eq!(reports[0].completed, 5, "J0 was cancelled");
    }

    #[test]
    fn racked_and_exotic_machine_configs_run() {
        let mut cfg = SysConfig::sample();
        cfg.machines = 4;
        cfg.racks = Some(2);
        cfg.machine_kind = MachineKind::Power9Ac922;
        cfg.workload = WorkloadSource::Generate { jobs: 8, seed: 1 };
        cfg.algorithms = vec![AlgoConfig { policy: "topo-aware".into(), weights: None }];
        let reports = cfg.run().unwrap();
        assert_eq!(reports[0].completed, 8);

        cfg.racks = Some(3); // 4 % 3 != 0
        assert!(matches!(cfg.run(), Err(ConfigError::Invalid(_))));

        cfg.racks = None;
        cfg.machine_kind = MachineKind::Dgx2;
        cfg.machines = 1;
        assert!(cfg.run().is_ok());
    }

    #[test]
    fn prototype_mode_runs_through_the_daemon() {
        let mut cfg = SysConfig::sample();
        cfg.simulation = false;
        cfg.time_scale = Some(0.001);
        cfg.algorithms = vec![AlgoConfig { policy: "topo-aware-p".into(), weights: None }];
        let reports = cfg.run().unwrap();
        assert_eq!(reports[0].mode, "prototype");
        assert_eq!(reports[0].completed, 6);
    }
}
