//! Fig. 10 — scenario 1: 100 jobs on 5 machines, per-policy slowdown
//! distributions (QoS and QoS + waiting time).

use super::{minsky_cluster, run_policy};
use crate::parallel::par_map;
use crate::table::{f, TextTable};
use gts_core::prelude::*;

/// Summary of one policy's run at cluster scale.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ScenarioSummary {
    /// The policy.
    pub kind: PolicyKind,
    /// Sorted (worst→best) per-job QoS slowdowns.
    pub qos: Vec<f64>,
    /// Sorted (worst→best) per-job QoS+wait slowdowns.
    pub qos_wait: Vec<f64>,
    /// SLO violations.
    pub slo_violations: usize,
    /// Mean queue waiting time, seconds.
    pub mean_wait_s: f64,
    /// Cluster makespan.
    pub makespan_s: f64,
    /// Mean decision latency, seconds.
    pub mean_decision_s: f64,
    /// Mean GPU utilization over the run (abstract: "higher resource
    /// utilization").
    pub gpu_utilization: f64,
}

/// Runs all four policies over a generated workload.
pub fn run(n_jobs: usize, n_machines: usize, seed: u64) -> Vec<ScenarioSummary> {
    let (cluster, profiles) = minsky_cluster(n_machines);
    let trace = WorkloadGenerator::with_defaults(seed).generate(n_jobs);
    // The four per-policy simulations are independent and deterministic —
    // run them on the worker pool.
    par_map(PolicyKind::ALL.to_vec(), |kind| {
        let res = run_policy(&cluster, &profiles, kind, trace.clone());
        let gpu_utilization = res.effective_gpu_utilization(cluster.n_gpus());
        ScenarioSummary {
            kind,
            qos: res.qos_slowdowns_sorted().into_iter().map(|(_, s)| s).collect(),
            qos_wait: res
                .qos_wait_slowdowns_sorted()
                .into_iter()
                .map(|(_, s)| s)
                .collect(),
            slo_violations: res.slo_violations,
            mean_wait_s: res.mean_waiting_s(),
            makespan_s: res.makespan_s,
            mean_decision_s: res.mean_decision_s,
            gpu_utilization,
        }
    })
}

/// Deciles of a sorted (descending) series, worst first.
pub fn deciles(sorted_desc: &[f64]) -> Vec<f64> {
    if sorted_desc.is_empty() {
        return vec![];
    }
    (0..=9)
        .map(|d| {
            let idx = (d * (sorted_desc.len() - 1)) / 9;
            sorted_desc[idx]
        })
        .collect()
}

/// Mean of a series.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Renders the scenario tables.
pub fn render_summaries(title: &str, summaries: &[ScenarioSummary]) -> String {
    let mut out = String::new();
    let mut head = TextTable::new(
        format!("{title} — summary"),
        &["policy", "worst QoS", "mean QoS", "worst QoS+wait", "mean wait (s)", "SLO viol.", "makespan (s)", "eff. util."],
    );
    for s in summaries {
        head.row(vec![
            s.kind.to_string(),
            f(s.qos.first().copied().unwrap_or(0.0), 2),
            f(mean(&s.qos), 3),
            f(s.qos_wait.first().copied().unwrap_or(0.0), 2),
            f(s.mean_wait_s, 1),
            s.slo_violations.to_string(),
            f(s.makespan_s, 0),
            format!("{:.1}%", s.gpu_utilization * 100.0),
        ]);
    }
    out.push_str(&head.to_string());
    out.push('\n');

    for (label, pick) in [
        ("(a) JOB'S QOS", true),
        ("(b) JOB'S QOS + WAITING TIME", false),
    ] {
        let mut t = TextTable::new(
            format!("{title} {label} — slowdown deciles, worst→best"),
            &["policy", "d0", "d1", "d2", "d3", "d4", "d5", "d6", "d7", "d8", "d9"],
        );
        for s in summaries {
            let series = if pick { &s.qos } else { &s.qos_wait };
            let mut row = vec![s.kind.to_string()];
            let ds = deciles(series);
            for d in 0..10 {
                row.push(f(ds.get(d).copied().unwrap_or(0.0), 2));
            }
            t.row(row);
        }
        out.push_str(&t.to_string());
        out.push('\n');
    }
    out
}

/// Renders scenario 1 at the paper's scale.
pub fn render() -> String {
    render_summaries(
        "Fig. 10 — scenario 1: 100 jobs, 5 machines",
        &run(100, 5, 1001),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by(summaries: &[ScenarioSummary], k: PolicyKind) -> &ScenarioSummary {
        summaries.iter().find(|s| s.kind == k).unwrap()
    }

    #[test]
    fn scenario1_policy_ordering() {
        let s = run(60, 5, 1001);
        let tap = by(&s, PolicyKind::TopoAwareP);
        let fcfs = by(&s, PolicyKind::Fcfs);
        let bf = by(&s, PolicyKind::BestFit);
        // "TOPO-AWARE-P ... does not violate the job's SLO."
        assert_eq!(tap.slo_violations, 0);
        // Greedy algorithms violate some and are slower on average.
        assert!(fcfs.slo_violations + bf.slo_violations > 0);
        assert!(mean(&tap.qos) <= mean(&fcfs.qos) + 1e-9);
        assert!(mean(&tap.qos) <= mean(&bf.qos) + 1e-9);
    }

    #[test]
    fn topo_aware_policies_beat_greedy_on_waiting_time() {
        // "Both TOPO-AWARE and TOPO-AWARE-P clearly outperform the greedy
        // algorithms" on the queue waiting axis.
        let s = run(60, 5, 1001);
        let ta = by(&s, PolicyKind::TopoAware);
        let tap = by(&s, PolicyKind::TopoAwareP);
        let fcfs = by(&s, PolicyKind::Fcfs);
        assert!(mean(&ta.qos_wait) <= mean(&fcfs.qos_wait) + 1e-9);
        assert!(mean(&tap.qos_wait) <= mean(&fcfs.qos_wait) + 1e-9);
    }

    #[test]
    fn effective_utilization_orders_with_topology_awareness() {
        // The abstract's claim: "the proposed strategy provides higher
        // resource utilization". Useful work per capacity-time must favor
        // the topology-aware policies.
        let s = run(100, 5, 1001);
        let by = |k: PolicyKind| s.iter().find(|x| x.kind == k).unwrap().gpu_utilization;
        assert!(by(PolicyKind::TopoAwareP) > by(PolicyKind::BestFit));
        assert!(by(PolicyKind::TopoAwareP) > by(PolicyKind::Fcfs));
        assert!(by(PolicyKind::TopoAware) > by(PolicyKind::Fcfs));
    }

    #[test]
    fn deciles_run_worst_to_best() {
        let xs = vec![0.9, 0.5, 0.3, 0.1, 0.0];
        let d = deciles(&xs);
        assert_eq!(d.len(), 10);
        assert_eq!(d[0], 0.9);
        assert_eq!(d[9], 0.0);
        for w in d.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(deciles(&[]).is_empty());
    }

    #[test]
    fn renders() {
        let s = render_summaries("test", &run(20, 2, 3));
        assert!(s.contains("TOPO-AWARE-P"));
        assert!(s.contains("deciles"));
    }
}
