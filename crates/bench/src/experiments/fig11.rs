//! Fig. 11 — scenario 2: 10 000 jobs on 1 000 machines.
//!
//! Same harness as Fig. 10 at cloud scale. The full-size run takes a few
//! minutes of wall time (it is also the §5.5.3 overhead measurement
//! setting); `run_scaled` exposes the knobs so tests exercise a reduced
//! configuration with the same code path.

use super::fig10::{render_summaries, run, ScenarioSummary};

/// Scenario 2 at the paper's full scale.
pub fn run_full() -> Vec<ScenarioSummary> {
    run(10_000, 1_000, 2002)
}

/// Scenario 2 scaled by a divisor (jobs and machines shrink together so
/// the load factor stays comparable).
pub fn run_scaled(divisor: usize) -> Vec<ScenarioSummary> {
    let d = divisor.max(1);
    run(10_000 / d, (1_000 / d).max(1), 2002)
}

/// Renders scenario 2; `divisor == 1` is the paper's scale.
pub fn render(divisor: usize) -> String {
    let summaries = if divisor <= 1 { run_full() } else { run_scaled(divisor) };
    let title = if divisor <= 1 {
        "Fig. 11 — scenario 2: 10000 jobs, 1000 machines".to_string()
    } else {
        format!(
            "Fig. 11 (scaled 1/{divisor}) — {} jobs, {} machines",
            10_000 / divisor,
            (1_000 / divisor).max(1)
        )
    };
    render_summaries(&title, &summaries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use super::super::fig10::mean;
    use gts_core::prelude::PolicyKind;

    #[test]
    fn scaled_scenario2_keeps_the_paper_ordering() {
        // 1/50 scale: 200 jobs on 20 machines — enough contention to
        // separate the policies, fast enough for CI.
        let s = run_scaled(50);
        let by = |k: PolicyKind| s.iter().find(|x| x.kind == k).unwrap();
        let tap = by(PolicyKind::TopoAwareP);
        let ta = by(PolicyKind::TopoAware);
        let fcfs = by(PolicyKind::Fcfs);
        let bf = by(PolicyKind::BestFit);

        // "FCFS has the worst performance, followed by BF"; the new
        // algorithm achieves the least slowdown.
        assert!(tap.slo_violations == 0);
        assert!(mean(&tap.qos) <= mean(&bf.qos) + 1e-9);
        assert!(mean(&tap.qos) <= mean(&fcfs.qos) + 1e-9);
        assert!(mean(&ta.qos) <= mean(&fcfs.qos) + 1e-9);
    }
}
