//! Fig. 9 — validating the trace-driven simulator against the concurrent
//! prototype on the Table 1 scenario.

use super::minsky_cluster;
use crate::table::{f, TextTable};
use gts_core::job::scenario::table1;
use gts_core::prelude::*;
use std::sync::Arc;

/// Side-by-side completion times for one job.
#[derive(Debug, Clone, Copy)]
pub struct Fig9Row {
    /// Job compared.
    pub job: JobId,
    /// Prototype completion time, simulated seconds.
    pub proto_finish_s: f64,
    /// Simulator completion time, seconds.
    pub sim_finish_s: f64,
}

impl Fig9Row {
    /// Relative disagreement.
    pub fn rel_error(&self) -> f64 {
        (self.proto_finish_s - self.sim_finish_s).abs() / self.sim_finish_s.max(1.0)
    }
}

/// Runs the validation for one policy.
pub fn run(kind: PolicyKind) -> Vec<Fig9Row> {
    let (cluster, profiles) = minsky_cluster(1);
    let sim = simulate(
        Arc::clone(&cluster),
        Arc::clone(&profiles),
        Policy::new(kind),
        table1(),
    );
    let proto = Prototype::new(
        cluster,
        profiles,
        ProtoConfig::with_scale(Policy::new(kind), TimeScale::new(0.002)),
    )
    .run(table1());

    sim.records
        .iter()
        .filter_map(|sr| {
            proto.record(sr.spec.id).map(|pr| Fig9Row {
                job: sr.spec.id,
                proto_finish_s: pr.finished_at_s,
                sim_finish_s: sr.finished_at_s,
            })
        })
        .collect()
}

/// Renders the validation table for TOPO-AWARE-P (panel (d), the policy
/// whose behaviour the validation matters most for).
pub fn render() -> String {
    let mut out = String::new();
    for kind in [PolicyKind::TopoAwareP, PolicyKind::Fcfs] {
        let mut rows = run(kind);
        rows.sort_by_key(|r| r.job);
        let mut t = TextTable::new(
            format!("Fig. 9 — prototype vs simulation, {kind}"),
            &["job", "prototype finish (s)", "simulation finish (s)", "rel. error"],
        );
        for r in &rows {
            t.row(vec![
                r.job.to_string(),
                f(r.proto_finish_s, 1),
                f(r.sim_finish_s, 1),
                format!("{:.1}%", r.rel_error() * 100.0),
            ]);
        }
        out.push_str(&t.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_tracks_the_prototype() {
        let rows = run(PolicyKind::TopoAwareP);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(
                r.rel_error() < 0.15,
                "{}: proto {:.1} vs sim {:.1}",
                r.job,
                r.proto_finish_s,
                r.sim_finish_s
            );
        }
    }
}
