//! Experiment regenerators, one per table/figure (DESIGN.md §3 index).

pub mod ablation;
pub mod failures;
pub mod fig10;
pub mod fig11;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod hetero;
pub mod modelpar;
pub mod overhead;
pub mod pcie;
pub mod spill;
pub mod table1;
pub mod validate;

use gts_core::prelude::*;
use std::sync::Arc;

/// The standard testbed: a homogeneous cluster of Power8 Minsky machines
/// with profiles generated at a fixed seed (§5.1's measurement campaign).
pub fn minsky_cluster(n_machines: usize) -> (Arc<ClusterTopology>, Arc<ProfileLibrary>) {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, n_machines));
    (cluster, profiles)
}

/// Runs one policy over a trace on a Minsky cluster.
pub fn run_policy(
    cluster: &Arc<ClusterTopology>,
    profiles: &Arc<ProfileLibrary>,
    kind: PolicyKind,
    trace: Vec<JobSpec>,
) -> SimResult {
    simulate(
        Arc::clone(cluster),
        Arc::clone(profiles),
        Policy::new(kind),
        trace,
    )
}

/// The pack/spread reference allocations on a 2-socket machine.
pub fn pack_spread_pairs(machine: &MachineTopology) -> (Vec<GpuId>, Vec<GpuId>) {
    let s0 = machine.gpus_in_socket(SocketId(0));
    let s1 = machine.gpus_in_socket(SocketId(1));
    let pack = vec![s0[0], s0[1]];
    let spread = vec![s0[0], s1[0]];
    (pack, spread)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_setup() {
        let (c, p) = minsky_cluster(3);
        assert_eq!(c.n_machines(), 3);
        assert_eq!(p.len(), 12);
        let (pack, spread) = pack_spread_pairs(c.machine(MachineId(0)));
        assert!(c.machine(MachineId(0)).is_packed(&pack));
        assert!(!c.machine(MachineId(0)).is_packed(&spread));
    }
}
