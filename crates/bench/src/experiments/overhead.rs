//! §5.5.3 — scheduler decision overhead.
//!
//! The paper: at the 10 k-job / 1 k-machine scale, TOPO-AWARE(-P) spends
//! ≈3 s per placement decision versus ≈0.45 s for the greedy policies
//! (≈6.7×) — the price of the `Θ(|V_P|)·Θ(|E_A|·log₂|V_P|)` search versus
//! `Θ(|E_A|+|V_P|)` greediness. Absolute numbers depend on the host; the
//! *ratio* and its growth with machine count are the reproducible shape.

use super::minsky_cluster;
use crate::table::{f, TextTable};
use gts_core::prelude::*;
use std::time::Instant;

/// Mean decision latency of one policy at one cluster size.
#[derive(Debug, Clone, Copy)]
pub struct OverheadPoint {
    /// Policy measured.
    pub kind: PolicyKind,
    /// Machines in the cluster.
    pub n_machines: usize,
    /// Mean decision latency, seconds.
    pub mean_s: f64,
}

/// Measures mean `decide()` latency against a half-loaded cluster.
///
/// The state is loaded once (placing one 2-GPU job on every even machine,
/// so every machine keeps capacity and the topology-aware search cannot
/// short-circuit), then each generated job is *decided but not placed* —
/// isolating pure decision cost exactly as §5.5.3 reports it.
pub fn measure(kind: PolicyKind, n_machines: usize, n_decisions: usize) -> OverheadPoint {
    let (cluster, profiles) = minsky_cluster(n_machines);
    let mut state = ClusterState::new(cluster, profiles);

    let mut gen = WorkloadGenerator::with_defaults(99);
    for (i, mut job) in gen.generate(n_machines / 2).into_iter().enumerate() {
        job.n_gpus = 2;
        let machine = MachineId((2 * i) as u32);
        let gpus: Vec<GlobalGpuId> = state.free_gpus(machine)[..2]
            .iter()
            .map(|&gpu| GlobalGpuId { machine, gpu })
            .collect();
        state.place(job, gpus, 1.0);
    }

    let policy = Policy::new(kind);
    let burst = gen.generate(n_decisions);
    let started = Instant::now();
    for job in &burst {
        let decision = policy.decide(&state, job);
        std::hint::black_box(&decision);
    }
    let elapsed = started.elapsed().as_secs_f64();
    OverheadPoint { kind, n_machines, mean_s: elapsed / n_decisions as f64 }
}

/// Runs the comparison at several cluster sizes.
pub fn run(sizes: &[usize], n_decisions: usize) -> Vec<OverheadPoint> {
    let mut points = Vec::new();
    for &n in sizes {
        for kind in PolicyKind::ALL {
            points.push(measure(kind, n, n_decisions));
        }
    }
    points
}

/// Renders the overhead table with the topo/greedy ratio per size.
pub fn render(sizes: &[usize], n_decisions: usize) -> String {
    let points = run(sizes, n_decisions);
    let mut t = TextTable::new(
        "§5.5.3 — mean placement-decision latency",
        &["machines", "FCFS (ms)", "BF (ms)", "TOPO-AWARE (ms)", "TOPO-AWARE-P (ms)", "topo/greedy ratio"],
    );
    for &n in sizes {
        let get = |k: PolicyKind| {
            points
                .iter()
                .find(|p| p.kind == k && p.n_machines == n)
                .map(|p| p.mean_s)
                .unwrap_or(0.0)
        };
        let greedy = 0.5 * (get(PolicyKind::Fcfs) + get(PolicyKind::BestFit));
        let topo = 0.5 * (get(PolicyKind::TopoAware) + get(PolicyKind::TopoAwareP));
        t.row(vec![
            n.to_string(),
            f(get(PolicyKind::Fcfs) * 1e3, 3),
            f(get(PolicyKind::BestFit) * 1e3, 3),
            f(get(PolicyKind::TopoAware) * 1e3, 3),
            f(get(PolicyKind::TopoAwareP) * 1e3, 3),
            format!("{:.1}x", topo / greedy.max(1e-12)),
        ]);
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_aware_costs_more_than_greedy() {
        let ta = measure(PolicyKind::TopoAware, 40, 30);
        let fcfs = measure(PolicyKind::Fcfs, 40, 30);
        assert!(
            ta.mean_s > fcfs.mean_s,
            "TA {:.2e}s should exceed FCFS {:.2e}s",
            ta.mean_s,
            fcfs.mean_s
        );
    }

    #[test]
    fn overhead_grows_with_cluster_size() {
        let small = measure(PolicyKind::TopoAware, 10, 20);
        let large = measure(PolicyKind::TopoAware, 80, 20);
        assert!(
            large.mean_s > small.mean_s,
            "80 machines {:.2e}s vs 10 machines {:.2e}s",
            large.mean_s,
            small.mean_s
        );
    }

    #[test]
    fn renders() {
        let s = render(&[5], 5);
        assert!(s.contains("ratio"));
    }
}
