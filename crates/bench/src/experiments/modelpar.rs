//! M1 (ours) — model-parallelism placement sensitivity.
//!
//! §2 predicts that "topology-aware scheduling is even more critical for
//! model-parallelization workloads because of the higher communication
//! requirements". This experiment quantifies that on the Minsky: for each
//! communication shape (data-parallel clique, pipeline, ring) compare the
//! mapper's placement against the worst same-size placement.

use super::minsky_cluster;
use crate::table::{f, TextTable};
use gts_core::map::{drb_map, PlacementOracle, UtilityWeights};
use gts_core::perf::placement::graph_iter_time;
use gts_core::prelude::*;

/// One row: a communication shape and its placement sensitivity.
#[derive(Debug, Clone)]
pub struct ModelParRow {
    /// Shape label.
    pub shape: String,
    /// Per-iteration time under the DRB mapping, seconds.
    pub mapped_s: f64,
    /// Per-iteration time under the worst same-GPU-set permutation.
    pub worst_s: f64,
}

impl ModelParRow {
    /// How much a topology-blind assignment can cost.
    pub fn sensitivity(&self) -> f64 {
        self.worst_s / self.mapped_s
    }
}

struct Idle<'a> {
    machine: &'a MachineTopology,
}

impl PlacementOracle for Idle<'_> {
    fn distance(&self, a: GpuId, b: GpuId) -> f64 {
        self.machine.distance(a, b)
    }
    fn interference(&self, _: &[GpuId]) -> f64 {
        1.0
    }
    fn fragmentation_after(&self, _: &[GpuId]) -> f64 {
        0.5
    }
}

fn worst_permutation_s(machine: &MachineTopology, graph: &JobGraph) -> f64 {
    // All permutations of the machine's 4 GPUs.
    let gpus: Vec<GpuId> = machine.gpus().collect();
    let mut worst: f64 = 0.0;
    let mut perm = gpus.clone();
    permute(&mut perm, 0, &mut |p| {
        let t = graph_iter_time(machine, NnModel::AlexNet, 1, graph, p).total_s();
        worst = worst.max(t);
    });
    worst
}

fn permute(items: &mut Vec<GpuId>, k: usize, visit: &mut impl FnMut(&[GpuId])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

/// Runs the sensitivity analysis over the three shapes.
pub fn run() -> Vec<ModelParRow> {
    let (cluster, _) = minsky_cluster(1);
    let machine = cluster.machine(MachineId(0));
    let oracle = Idle { machine };
    let shapes: Vec<(String, JobGraph)> = vec![
        ("data-parallel (clique)".into(), JobGraph::uniform(4, 4.0)),
        ("pipeline (chain)".into(), JobGraph::pipeline(4, 4.0)),
        ("ring".into(), JobGraph::ring(4, 4.0)),
    ];
    let all: Vec<GpuId> = machine.gpus().collect();
    shapes
        .into_iter()
        .map(|(shape, graph)| {
            let mapping = drb_map(&graph, &all, &oracle, UtilityWeights::default())
                .expect("machine fits the job");
            let mapped_s =
                graph_iter_time(machine, NnModel::AlexNet, 1, &graph, &mapping).total_s();
            let worst_s = worst_permutation_s(machine, &graph);
            ModelParRow { shape, mapped_s, worst_s }
        })
        .collect()
}

/// Renders the table.
pub fn render() -> String {
    let mut t = TextTable::new(
        "M1 (ours) — model-parallel placement sensitivity (AlexNet, batch 1, 4 GPUs)",
        &["shape", "mapped iter (ms)", "worst iter (ms)", "worst/mapped"],
    );
    for r in run() {
        t.row(vec![
            r.shape.clone(),
            f(r.mapped_s * 1e3, 1),
            f(r.worst_s * 1e3, 1),
            format!("{:.2}x", r.sensitivity()),
        ]);
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapper_never_loses_to_the_worst_permutation() {
        for r in run() {
            assert!(
                r.mapped_s <= r.worst_s + 1e-12,
                "{}: mapped {} vs worst {}",
                r.shape,
                r.mapped_s,
                r.worst_s
            );
        }
    }

    #[test]
    fn sparse_graphs_are_more_placement_sensitive() {
        let rows = run();
        let clique = rows.iter().find(|r| r.shape.contains("clique")).unwrap();
        let pipeline = rows.iter().find(|r| r.shape.contains("pipeline")).unwrap();
        // The clique pays for every pair no matter what; a pipeline's cost
        // swings much harder with placement — §2's claim.
        assert!(
            pipeline.sensitivity() > clique.sensitivity(),
            "pipeline {:.3} vs clique {:.3}",
            pipeline.sensitivity(),
            clique.sensitivity()
        );
        assert!(pipeline.sensitivity() > 1.5);
    }

    #[test]
    fn renders() {
        assert!(render().contains("pipeline"));
    }
}
