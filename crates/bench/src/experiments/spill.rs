//! D1 (ours) — disaggregated multi-node scaling on a racked cluster.
//!
//! §7's future work made concrete: jobs wider than any machine (6–8 GPUs on
//! 4-GPU Minskys) spill across machines. The topology-aware spill fills
//! whole machines and stays rack-local; the greedy spills take whatever
//! free GPUs come first. Network-bound gradient exchange punishes sloppy
//! spills hard.

use super::fig10::mean;
use crate::table::{f, TextTable};
use gts_core::prelude::*;
use std::sync::Arc;

/// One policy's summary on the spill workload.
#[derive(Debug, Clone)]
pub struct SpillSummary {
    /// Policy.
    pub kind: PolicyKind,
    /// Jobs completed.
    pub completed: usize,
    /// Mean QoS slowdown of the *wide* (multi-node) jobs.
    pub wide_mean_qos: f64,
    /// Mean QoS slowdown of the single-node jobs.
    pub narrow_mean_qos: f64,
    /// Mean machines spanned by wide jobs.
    pub wide_mean_machines: f64,
    /// Mean racks spanned by wide jobs.
    pub wide_mean_racks: f64,
}

fn workload(n: usize, seed: u64) -> Vec<JobSpec> {
    let mut jobs = WorkloadGenerator::with_defaults(seed).generate(n);
    // Every fifth job becomes a wide multi-node job (6 GPUs on 4-GPU
    // machines → must spill).
    for (i, j) in jobs.iter_mut().enumerate() {
        if i % 5 == 0 {
            j.n_gpus = 6;
            j.constraints = Constraints { single_node: false, anti_collocate: false };
            j.min_utility = 0.3;
        }
    }
    jobs
}

/// Runs all policies on a 2-rack × 3-machine cluster.
pub fn run(n_jobs: usize, seed: u64) -> Vec<SpillSummary> {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous_racked(machine, 2, 3));
    let trace = workload(n_jobs, seed);
    PolicyKind::ALL
        .iter()
        .map(|&kind| {
            let res = simulate(
                Arc::clone(&cluster),
                Arc::clone(&profiles),
                Policy::new(kind),
                trace.clone(),
            );
            let (wide, narrow): (Vec<_>, Vec<_>) =
                res.records.iter().partition(|r| r.spec.n_gpus > 4);
            let wide_qos: Vec<f64> = wide.iter().map(|r| r.qos_slowdown()).collect();
            let narrow_qos: Vec<f64> = narrow.iter().map(|r| r.qos_slowdown()).collect();
            let spans: Vec<f64> = wide
                .iter()
                .map(|r| {
                    let mut ms: Vec<MachineId> = r.gpus.iter().map(|g| g.machine).collect();
                    ms.sort_unstable();
                    ms.dedup();
                    ms.len() as f64
                })
                .collect();
            let racks: Vec<f64> = wide
                .iter()
                .map(|r| {
                    let mut rs: Vec<u32> = r
                        .gpus
                        .iter()
                        .map(|g| cluster.rack_of(g.machine))
                        .collect();
                    rs.sort_unstable();
                    rs.dedup();
                    rs.len() as f64
                })
                .collect();
            SpillSummary {
                kind,
                completed: res.records.len(),
                wide_mean_qos: mean(&wide_qos),
                narrow_mean_qos: mean(&narrow_qos),
                wide_mean_machines: mean(&spans),
                wide_mean_racks: mean(&racks),
            }
        })
        .collect()
}

/// Renders the spill table.
pub fn render() -> String {
    let mut t = TextTable::new(
        "D1 (ours) — disaggregated 6-GPU jobs on a 2-rack × 3-Minsky cluster (50 jobs)",
        &["policy", "completed", "wide QoS", "narrow QoS", "machines/wide job", "racks/wide job"],
    );
    for s in run(50, 4242) {
        t.row(vec![
            s.kind.to_string(),
            s.completed.to_string(),
            f(s.wide_mean_qos, 2),
            f(s.narrow_mean_qos, 3),
            f(s.wide_mean_machines, 2),
            f(s.wide_mean_racks, 2),
        ]);
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_policy_completes_the_spill_workload() {
        for s in run(25, 4242) {
            assert_eq!(s.completed, 25, "{}", s.kind);
            assert!(s.wide_mean_machines >= 2.0 - 1e-9, "{}", s.kind);
        }
    }

    #[test]
    fn topology_aware_spills_stay_rack_local() {
        let s = run(25, 4242);
        let by = |k: PolicyKind| s.iter().find(|x| x.kind == k).unwrap();
        let ta = by(PolicyKind::TopoAware);
        let tap = by(PolicyKind::TopoAwareP);
        let bf = by(PolicyKind::BestFit);
        // The topology-aware spills cross racks no more often than the
        // greedy ones (machine-count compactness is not the objective —
        // three packed pairs in one rack beat a 4+2 straddling racks).
        assert!(
            ta.wide_mean_racks <= bf.wide_mean_racks + 1e-9,
            "TA racks {} vs BF {}",
            ta.wide_mean_racks,
            bf.wide_mean_racks
        );
        assert!(tap.wide_mean_racks <= bf.wide_mean_racks + 1e-9);
        // Rack crossings cost real time now (halved aggregation bandwidth),
        // so the rack-local policies' wide jobs run no slower on average.
        assert!(ta.wide_mean_qos <= bf.wide_mean_qos + 0.05);
    }

    #[test]
    fn renders() {
        assert!(render().contains("racks/wide job"));
    }
}
