//! Fig. 4 — pack (P2P) vs spread (no-P2P) speedup across batch sizes.
//!
//! "When the speedup is higher than 1, pack is better than spread."

use super::{minsky_cluster, pack_spread_pairs};
use crate::table::{f, TextTable};
use gts_core::prelude::*;

/// The paper's batch-size sweep.
pub const BATCHES: [u32; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// One speedup point.
#[derive(Debug, Clone, Copy)]
pub struct Fig4Point {
    /// Network.
    pub model: NnModel,
    /// Per-GPU batch size.
    pub batch: u32,
    /// `t_spread / t_pack`.
    pub speedup: f64,
}

/// Speedup of pack over spread on a given machine model.
pub fn speedup_on(machine: &MachineTopology, model: NnModel, batch: u32) -> f64 {
    let (pack, spread) = pack_spread_pairs(machine);
    let t_pack = PlacementPerf::evaluate(machine, &pack)
        .iter_time(model, batch)
        .total_s();
    let t_spread = PlacementPerf::evaluate(machine, &spread)
        .iter_time(model, batch)
        .total_s();
    t_spread / t_pack
}

/// Computes every point of Fig. 4 (Minsky/NVLink machine).
pub fn run() -> Vec<Fig4Point> {
    let (cluster, _) = minsky_cluster(1);
    let machine = cluster.machine(MachineId(0));
    let mut points = Vec::with_capacity(NnModel::ALL.len() * BATCHES.len());
    for model in NnModel::ALL {
        for batch in BATCHES {
            points.push(Fig4Point {
                model,
                batch,
                speedup: speedup_on(machine, model, batch),
            });
        }
    }
    points
}

/// Renders the Fig. 4 series.
pub fn render() -> String {
    let points = run();
    let mut t = TextTable::new(
        "Fig. 4 — pack vs spread speedup (>1 means pack wins)",
        &["batch", "AlexNet", "CaffeRef", "GoogLeNet"],
    );
    for batch in BATCHES {
        let get = |m: NnModel| {
            points
                .iter()
                .find(|p| p.model == m && p.batch == batch)
                .map(|p| f(p.speedup, 3))
                .unwrap_or_default()
        };
        t.row(vec![
            batch.to_string(),
            get(NnModel::AlexNet),
            get(NnModel::CaffeRef),
            get(NnModel::GoogLeNet),
        ]);
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speedup(points: &[Fig4Point], m: NnModel, b: u32) -> f64 {
        points
            .iter()
            .find(|p| p.model == m && p.batch == b)
            .unwrap()
            .speedup
    }

    #[test]
    fn paper_anchors() {
        let points = run();
        // AlexNet batch 1–2: ≈1.30×.
        assert!((1.25..1.35).contains(&speedup(&points, NnModel::AlexNet, 1)));
        assert!((1.2..1.35).contains(&speedup(&points, NnModel::AlexNet, 2)));
        // "For batch sizes larger than 16 both pack or spread have even
        // performance."
        for b in [32, 64, 128] {
            let s = speedup(&points, NnModel::AlexNet, b);
            assert!((0.98..1.08).contains(&s), "batch {b}: {s}");
        }
        // GoogLeNet: "less or no impact".
        for b in BATCHES {
            let s = speedup(&points, NnModel::GoogLeNet, b);
            assert!((0.98..1.08).contains(&s), "batch {b}: {s}");
        }
    }

    #[test]
    fn alexnet_speedup_decays_monotonically() {
        let points = run();
        let series: Vec<f64> = BATCHES
            .iter()
            .map(|&b| speedup(&points, NnModel::AlexNet, b))
            .collect();
        for w in series.windows(2) {
            assert!(w[0] >= w[1] - 1e-9, "{series:?}");
        }
    }

    #[test]
    fn caffe_ref_tracks_just_below_alexnet() {
        let points = run();
        for b in [1u32, 2, 4] {
            let a = speedup(&points, NnModel::AlexNet, b);
            let c = speedup(&points, NnModel::CaffeRef, b);
            assert!(c <= a + 1e-9, "batch {b}: CaffeRef {c} vs AlexNet {a}");
            assert!(c > 1.15, "batch {b}: CaffeRef should still benefit: {c}");
        }
    }

    #[test]
    fn renders_all_batches() {
        let s = render();
        for b in BATCHES {
            assert!(s.contains(&format!("\n  {b}")), "missing batch {b}");
        }
    }
}
