//! Fig. 7 — the multi-level physical-topology graphs themselves, exported
//! as Graphviz DOT (render with `dot -Tsvg`).

use gts_core::prelude::*;
use gts_core::topo::to_dot;

/// DOT for the Power8 Minsky graph (Fig. 7 left).
pub fn minsky_dot() -> String {
    to_dot(power8_minsky().graph(), "power8-minsky")
}

/// DOT for the DGX-1 graph (Fig. 7 right).
pub fn dgx1_dot() -> String {
    to_dot(dgx1().graph(), "dgx-1")
}

/// Renders both graphs.
pub fn render() -> String {
    format!(
        "Fig. 7 — physical topology graphs (Graphviz DOT; pipe into `dot -Tsvg`)\n\n{}\n{}",
        minsky_dot(),
        dgx1_dot()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn both_graphs_render() {
        let s = super::render();
        assert!(s.contains("graph \"power8-minsky\""));
        assert!(s.contains("graph \"dgx-1\""));
    }
}
