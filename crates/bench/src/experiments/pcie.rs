//! §3.2 (text) — NVLink machine vs PCIe/K80 machine: pack speedups.
//!
//! Paper anchors: AlexNet batch 1 → 1.27× (NVLink) vs 1.24× (PCIe);
//! batch 2 → 1.30× vs 1.21×; batch 8 → 1.20× vs 1.10×. Our PCIe machine
//! routes peer traffic through a per-socket switch, so pack keeps P2P but
//! at PCIe bandwidth; the model reproduces the ordering and monotone decay,
//! with a smaller absolute PCIe gain (documented in EXPERIMENTS.md).

use super::fig4::speedup_on;
use crate::table::{f, TextTable};
use gts_core::prelude::*;

/// One machine-vs-machine comparison point.
#[derive(Debug, Clone, Copy)]
pub struct PciePoint {
    /// Per-GPU batch size.
    pub batch: u32,
    /// Pack speedup on the NVLink Minsky.
    pub nvlink: f64,
    /// Pack speedup on the PCIe/K80 machine.
    pub pcie: f64,
}

/// The paper's three quoted batch sizes plus the rest of the sweep.
pub fn run() -> Vec<PciePoint> {
    let nv = power8_minsky();
    let pc = power8_pcie_k80();
    [1u32, 2, 4, 8, 16, 32, 64, 128]
        .iter()
        .map(|&batch| PciePoint {
            batch,
            nvlink: speedup_on(&nv, NnModel::AlexNet, batch),
            pcie: speedup_on(&pc, NnModel::AlexNet, batch),
        })
        .collect()
}

/// Renders the comparison with the paper's quoted values alongside.
pub fn render() -> String {
    let mut t = TextTable::new(
        "§3.2 — pack speedup: NVLink vs PCIe machine (AlexNet)",
        &["batch", "NVLink (ours)", "PCIe (ours)", "NVLink (paper)", "PCIe (paper)"],
    );
    let paper: &[(u32, &str, &str)] =
        &[(1, "1.27", "1.24"), (2, "1.30", "1.21"), (8, "1.20", "1.10")];
    for p in run() {
        let quoted = paper.iter().find(|(b, _, _)| *b == p.batch);
        t.row(vec![
            p.batch.to_string(),
            f(p.nvlink, 3),
            f(p.pcie, 3),
            quoted.map(|(_, n, _)| n.to_string()).unwrap_or_else(|| "-".into()),
            quoted.map(|(_, _, q)| q.to_string()).unwrap_or_else(|| "-".into()),
        ]);
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcie_still_benefits_but_less_than_nvlink() {
        for p in run().iter().filter(|p| p.batch <= 8) {
            assert!(p.pcie > 1.05, "batch {}: PCIe gain vanished: {}", p.batch, p.pcie);
            assert!(
                p.nvlink > p.pcie,
                "batch {}: NVLink gain {} should exceed PCIe {}",
                p.batch,
                p.nvlink,
                p.pcie
            );
        }
    }

    #[test]
    fn both_machines_decay_to_parity_at_big_batches() {
        let points = run();
        let last = points.last().unwrap();
        assert!((0.98..1.06).contains(&last.nvlink));
        assert!((0.98..1.06).contains(&last.pcie));
    }

    #[test]
    fn renders_with_paper_columns() {
        let s = render();
        assert!(s.contains("paper"));
        assert!(s.contains("1.27"));
    }
}
