//! Fig. 8 — the prototype scenario: Table 1's six jobs on one Minsky under
//! all four policies. Panels (a)–(d) are the placement timelines, (e) the
//! per-job QoS slowdown, (f) QoS + waiting time; the headline number is the
//! cumulative execution time (BF 461.7 s / FCFS 456.2 s / TA 454.2 s /
//! TA-P 356.9 s → ≈1.30× in the paper).

use super::{minsky_cluster, run_policy};
use crate::table::{f, TextTable};
use gts_core::job::scenario::table1;
use gts_core::prelude::*;

/// One policy's complete run.
#[derive(Debug, Clone)]
pub struct PolicyRun {
    /// The policy.
    pub kind: PolicyKind,
    /// Its simulation result.
    pub result: SimResult,
}

/// Runs the Table 1 scenario under every policy.
pub fn run() -> Vec<PolicyRun> {
    let (cluster, profiles) = minsky_cluster(1);
    PolicyKind::ALL
        .iter()
        .map(|&kind| PolicyRun {
            kind,
            result: run_policy(&cluster, &profiles, kind, table1()),
        })
        .collect()
}

/// Renders the headline comparison, both slowdown panels and the
/// placement timelines.
pub fn render() -> String {
    let runs = run();
    let mut out = String::new();

    let tap = runs
        .iter()
        .find(|r| r.kind == PolicyKind::TopoAwareP)
        .expect("TOPO-AWARE-P runs")
        .result
        .makespan_s;
    let mut head = TextTable::new(
        "Fig. 8 — cumulative execution time (Table 1 scenario)",
        &["policy", "cumulative (s)", "speedup of TOPO-AWARE-P", "SLO violations"],
    );
    for r in &runs {
        head.row(vec![
            r.kind.to_string(),
            f(r.result.makespan_s, 1),
            format!("{:.2}x", r.result.makespan_s / tap),
            r.result.slo_violations.to_string(),
        ]);
    }
    out.push_str(&head.to_string());
    out.push('\n');

    let mut qos = TextTable::new(
        "Fig. 8(e) — job slowdown vs ideal (placement only), worst→best",
        &["policy", "per-job slowdown"],
    );
    let mut qosw = TextTable::new(
        "Fig. 8(f) — job slowdown including waiting time, worst→best",
        &["policy", "per-job slowdown"],
    );
    for r in &runs {
        let fmt_series = |series: Vec<(JobId, f64)>| {
            series
                .iter()
                .map(|(id, s)| format!("{id}:{s:.2}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        qos.row(vec![
            r.kind.to_string(),
            fmt_series(r.result.qos_slowdowns_sorted()),
        ]);
        qosw.row(vec![
            r.kind.to_string(),
            fmt_series(r.result.qos_wait_slowdowns_sorted()),
        ]);
    }
    out.push_str(&qos.to_string());
    out.push('\n');
    out.push_str(&qosw.to_string());
    out.push('\n');

    // Bottom panels: P2P vs GPU-CPU-GPU bandwidth, sampled at the figure's
    // 48 s ticks.
    let (cluster, _) = minsky_cluster(1);
    let mut bw = TextTable::new(
        "Fig. 8 bottom panels — machine link bandwidth (GB/s) at 48 s ticks",
        &["policy", "channel", "t=48", "t=96", "t=144", "t=192", "t=240", "t=288", "peak"],
    );
    for r in &runs {
        let series = gts_core::sim::bandwidth_series(&r.result, &cluster, 1.0);
        let s = &series[0];
        let sample = |k: usize| -> f64 {
            let idx = k.min(s.t_s.len().saturating_sub(1));
            s.p2p_gbs[idx]
        };
        let sample_host = |k: usize| -> f64 {
            let idx = k.min(s.t_s.len().saturating_sub(1));
            s.host_gbs[idx]
        };
        bw.row(vec![
            r.kind.to_string(),
            "P2P".into(),
            f(sample(48), 1),
            f(sample(96), 1),
            f(sample(144), 1),
            f(sample(192), 1),
            f(sample(240), 1),
            f(sample(288), 1),
            f(s.peak_p2p(), 1),
        ]);
        bw.row(vec![
            String::new(),
            "GPU-CPU-GPU".into(),
            f(sample_host(48), 1),
            f(sample_host(96), 1),
            f(sample_host(144), 1),
            f(sample_host(192), 1),
            f(sample_host(240), 1),
            f(sample_host(288), 1),
            f(s.peak_host(), 1),
        ]);
    }
    out.push_str(&bw.to_string());
    out.push('\n');

    for r in &runs {
        let mut tl = TextTable::new(
            format!("Fig. 8 timeline — {}", r.kind),
            &["job", "GPUs", "start (s)", "end (s)"],
        );
        let mut segments = r.result.timeline.clone();
        segments.sort_by(|a, b| a.start_s.partial_cmp(&b.start_s).expect("finite"));
        for seg in segments {
            let gpus = seg
                .gpus
                .iter()
                .map(|g| g.gpu.to_string())
                .collect::<Vec<_>>()
                .join("+");
            tl.row(vec![
                seg.job.to_string(),
                gpus,
                f(seg.start_s, 1),
                f(seg.end_s, 1),
            ]);
        }
        out.push_str(&tl.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topo_aware_p_wins_without_slo_violations() {
        let runs = run();
        let by = |k: PolicyKind| runs.iter().find(|r| r.kind == k).unwrap();
        let tap = by(PolicyKind::TopoAwareP);
        assert_eq!(tap.result.slo_violations, 0);
        for k in [PolicyKind::Fcfs, PolicyKind::BestFit, PolicyKind::TopoAware] {
            let other = by(k);
            let speedup = other.result.makespan_s / tap.result.makespan_s;
            assert!(
                speedup > 1.1,
                "{k}: expected TA-P ≥1.1× faster, got {speedup:.3}"
            );
        }
    }

    #[test]
    fn greedy_policies_violate_job3s_slo() {
        let runs = run();
        for r in &runs {
            let j3 = r.result.record(JobId(3)).unwrap();
            if r.kind == PolicyKind::TopoAwareP {
                assert!(!j3.slo_violated, "TA-P must satisfy Job 3");
            } else {
                assert!(j3.slo_violated, "{}: Job 3 should violate", r.kind);
            }
        }
    }

    #[test]
    fn render_contains_all_policies() {
        let s = render();
        for k in PolicyKind::ALL {
            assert!(s.contains(&k.to_string()), "{k} missing");
        }
        assert!(s.contains("cumulative"));
    }
}
