//! Fig. 6 — collocation slowdown matrix: two AlexNet 2-GPU jobs sharing a
//! Minsky, batch class × batch class.
//!
//! The paper's collocation study interleaves the two jobs across sockets
//! (the worst case for bus sharing — domain factor 1.0); the matrix shows
//! how much the row job slows down because of the column job. Pass a
//! smaller `domain_factor` to see the packed configuration the
//! topology-aware scheduler would choose instead (0.35).

use crate::table::{pct, TextTable};
use gts_core::perf::interference::pairwise_slowdown;
use gts_core::prelude::*;

/// The Fig. 6 matrix: `slowdown[victim][aggressor]`.
#[derive(Debug, Clone)]
pub struct Fig6Matrix {
    /// Domain factor the matrix was computed at.
    pub domain_factor: f64,
    /// `slowdown[victim.index()][aggressor.index()]`.
    pub slowdown: [[f64; 4]; 4],
}

/// Computes the matrix for two AlexNet jobs at the given bus-domain factor.
pub fn run(domain_factor: f64) -> Fig6Matrix {
    let mut slowdown = [[0.0; 4]; 4];
    for victim in BatchClass::ALL {
        for aggressor in BatchClass::ALL {
            slowdown[victim.index()][aggressor.index()] = pairwise_slowdown(
                (NnModel::AlexNet, victim),
                (NnModel::AlexNet, aggressor),
                domain_factor,
            );
        }
    }
    Fig6Matrix { domain_factor, slowdown }
}

/// Renders both the shared-bus matrix (the paper's measurement) and the
/// packed alternative.
pub fn render() -> String {
    let mut out = String::new();
    for (factor, label) in [
        (1.0, "socket-sharing placement (the paper's measurement)"),
        (0.35, "socket-exclusive packing (what TOPO-AWARE chooses)"),
    ] {
        let m = run(factor);
        let mut t = TextTable::new(
            format!("Fig. 6 — collocation slowdown, {label}"),
            &["victim \\ aggressor", "tiny", "small", "medium", "big"],
        );
        for victim in BatchClass::ALL {
            let mut row = vec![victim.to_string()];
            for aggressor in BatchClass::ALL {
                row.push(pct(m.slowdown[victim.index()][aggressor.index()]));
            }
            t.row(row);
        }
        out.push_str(&t.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_cells() {
        let m = run(1.0);
        let s = |v: BatchClass, a: BatchClass| m.slowdown[v.index()][a.index()];
        assert!((s(BatchClass::Tiny, BatchClass::Tiny) - 0.30).abs() < 0.01);
        assert!((s(BatchClass::Tiny, BatchClass::Big) - 0.24).abs() < 0.01);
        assert!((s(BatchClass::Small, BatchClass::Big) - 0.21).abs() < 0.015);
        assert!(s(BatchClass::Big, BatchClass::Big) < 0.02);
    }

    #[test]
    fn matrix_monotone_in_both_axes() {
        let m = run(1.0);
        for i in 0..3 {
            for j in 0..4 {
                assert!(m.slowdown[i][j] >= m.slowdown[i + 1][j]);
                assert!(m.slowdown[j][i] >= m.slowdown[j][i + 1]);
            }
        }
    }

    #[test]
    fn packing_scales_the_matrix_down() {
        let shared = run(1.0);
        let packed = run(0.35);
        for i in 0..4 {
            for j in 0..4 {
                assert!((packed.slowdown[i][j] - 0.35 * shared.slowdown[i][j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn renders_both_configurations() {
        let s = render();
        assert!(s.contains("socket-sharing"));
        assert!(s.contains("socket-exclusive"));
    }
}
