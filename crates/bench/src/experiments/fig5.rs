//! Fig. 5 — NVLink bandwidth usage over time for AlexNet at batch sizes
//! 1, 4, 64 and 128 (2 GPUs, packed, 250 s window).

use super::{minsky_cluster, pack_spread_pairs};
use crate::table::{f, TextTable};
use gts_core::perf::bandwidth::BandwidthTrace;
use gts_core::prelude::*;

/// The batch sizes the paper plots.
pub const BATCHES: [u32; 4] = [1, 4, 64, 128];

/// Plot window, seconds.
pub const WINDOW_S: f64 = 250.0;

/// One trace of Fig. 5.
#[derive(Debug, Clone)]
pub struct Fig5Trace {
    /// Per-GPU batch size.
    pub batch: u32,
    /// The 1 Hz bandwidth samples.
    pub trace: BandwidthTrace,
}

/// Generates the four traces.
pub fn run(seed: u64) -> Vec<Fig5Trace> {
    let (cluster, _) = minsky_cluster(1);
    let machine = cluster.machine(MachineId(0));
    let (pack, _) = pack_spread_pairs(machine);
    let perf = PlacementPerf::evaluate(machine, &pack);
    BATCHES
        .iter()
        .map(|&batch| {
            let iter = perf.iter_time(NnModel::AlexNet, batch);
            Fig5Trace {
                batch,
                trace: BandwidthTrace::generate(iter, 0.0, WINDOW_S, seed ^ u64::from(batch)),
            }
        })
        .collect()
}

/// Renders summary rows plus a coarse (25 s step) series.
pub fn render() -> String {
    let traces = run(42);
    let mut out = String::new();
    let mut t = TextTable::new(
        "Fig. 5 — NVLink bandwidth usage, AlexNet 2-GPU packed (GB/s)",
        &["batch", "mean", "peak"],
    );
    for tr in &traces {
        t.row(vec![
            tr.batch.to_string(),
            f(tr.trace.mean_gbs(), 1),
            f(tr.trace.peak_gbs(), 1),
        ]);
    }
    out.push_str(&t.to_string());

    let mut series = TextTable::new(
        "  sampled series (every 25 s)",
        &["t(s)", "b=1", "b=4", "b=64", "b=128"],
    );
    for step in 0..10 {
        let idx = step * 25;
        let mut row = vec![idx.to_string()];
        for tr in &traces {
            row.push(f(tr.trace.samples_gbs[idx], 1));
        }
        series.row(row);
    }
    out.push_str(&series.to_string());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_endpoints() {
        let traces = run(42);
        let b1 = traces.iter().find(|t| t.batch == 1).unwrap();
        let b128 = traces.iter().find(|t| t.batch == 128).unwrap();
        // ≈40 GB/s at batch 1, ≈6 GB/s at batch 128.
        assert!((37.0..43.0).contains(&b1.trace.mean_gbs()), "{}", b1.trace.mean_gbs());
        assert!((4.5..7.5).contains(&b128.trace.mean_gbs()), "{}", b128.trace.mean_gbs());
    }

    #[test]
    fn bandwidth_orders_inversely_with_batch() {
        let traces = run(7);
        for w in traces.windows(2) {
            assert!(w[0].trace.mean_gbs() > w[1].trace.mean_gbs());
        }
    }

    #[test]
    fn traces_cover_the_window() {
        for tr in run(1) {
            assert_eq!(tr.trace.samples_gbs.len(), WINDOW_S as usize);
        }
    }

    #[test]
    fn renders() {
        let s = render();
        assert!(s.contains("b=128"));
    }
}
