//! Fig. 3 — application breakdown: % GPU computation vs communication,
//! under pack (P2P) and spread (no-P2P) placements.

use super::{minsky_cluster, pack_spread_pairs};
use crate::table::{pct, TextTable};
use gts_core::perf::breakdown;
use gts_core::prelude::*;

/// One bar group of Fig. 3.
#[derive(Debug, Clone, Copy)]
pub struct Fig3Row {
    /// Network.
    pub model: NnModel,
    /// Batch class.
    pub batch: BatchClass,
    /// Fraction of time computing (pack placement).
    pub compute_frac: f64,
    /// Fraction communicating under pack (P2P).
    pub comm_frac_pack: f64,
    /// Fraction communicating under spread (no P2P).
    pub comm_frac_spread: f64,
}

/// Computes every bar of Fig. 3.
pub fn run() -> Vec<Fig3Row> {
    let (cluster, _) = minsky_cluster(1);
    let machine = cluster.machine(MachineId(0));
    let (pack, spread) = pack_spread_pairs(machine);
    let mut rows = Vec::with_capacity(12);
    for model in NnModel::ALL {
        for batch in BatchClass::ALL {
            let b = breakdown::breakdown(machine, model, batch, &pack, &spread);
            rows.push(Fig3Row {
                model,
                batch,
                compute_frac: b.compute_frac,
                comm_frac_pack: b.comm_frac_pack,
                comm_frac_spread: b.comm_frac_spread,
            });
        }
    }
    rows
}

/// Renders the Fig. 3 table.
pub fn render() -> String {
    let mut t = TextTable::new(
        "Fig. 3 — execution-time breakdown (2-GPU jobs on Power8/NVLink)",
        &["NN", "batch", "GPU-compute", "comm (pack=P2P)", "comm (spread=no-P2P)"],
    );
    for r in run() {
        t.row(vec![
            r.model.to_string(),
            r.batch.to_string(),
            pct(r.compute_frac),
            pct(r.comm_frac_pack),
            pct(r.comm_frac_spread),
        ]);
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_twelve_bars() {
        assert_eq!(run().len(), 12);
    }

    #[test]
    fn paper_shape_holds() {
        let rows = run();
        // Tiny AlexNet is communication-dominated; big AlexNet compute-
        // dominated (the Fig. 3 extremes).
        let tiny_alex = rows
            .iter()
            .find(|r| r.model == NnModel::AlexNet && r.batch == BatchClass::Tiny)
            .unwrap();
        assert!(tiny_alex.comm_frac_pack > 0.5);
        let big_alex = rows
            .iter()
            .find(|r| r.model == NnModel::AlexNet && r.batch == BatchClass::Big)
            .unwrap();
        assert!(big_alex.compute_frac > 0.9);
        // GoogLeNet's communication share is small at every batch size.
        for r in rows.iter().filter(|r| r.model == NnModel::GoogLeNet) {
            assert!(r.comm_frac_pack < 0.25, "{:?}", r);
        }
        // Spread always communicates at least as long as pack.
        for r in &rows {
            assert!(r.comm_frac_spread >= r.comm_frac_pack - 1e-12);
        }
    }

    #[test]
    fn renders() {
        let s = render();
        assert!(s.contains("AlexNet"));
        assert!(s.contains("GoogLeNet"));
    }
}
