//! F1 (ours) — resilience under machine failures.
//!
//! Cloud fleets lose machines; the scheduler's job is to absorb the hit.
//! Scenario-1's workload runs on 5 machines with one machine failing a
//! third of the way through: its jobs restart elsewhere from scratch. We
//! compare how much makespan and QoS each policy gives back, and confirm
//! the postponing policy's SLO guarantee survives the churn.

use super::fig10::mean;
use super::minsky_cluster;
use crate::parallel::par_map;
use crate::table::{f, TextTable};
use gts_core::prelude::*;
use std::sync::Arc;

/// One policy's outcome with and without the failure.
#[derive(Debug, Clone)]
pub struct FailureSummary {
    /// Policy.
    pub kind: PolicyKind,
    /// Makespan without failures, seconds.
    pub makespan_clean_s: f64,
    /// Makespan with the failure, seconds.
    pub makespan_failed_s: f64,
    /// Jobs that had to restart.
    pub restarted_jobs: usize,
    /// Mean QoS slowdown with the failure.
    pub mean_qos_failed: f64,
    /// SLO violations with the failure.
    pub slo_violations: usize,
}

impl FailureSummary {
    /// Relative makespan cost of the failure.
    pub fn overhead(&self) -> f64 {
        self.makespan_failed_s / self.makespan_clean_s - 1.0
    }
}

/// Runs every policy with and without a failure of machine 2 at `fail_at_s`.
pub fn run(n_jobs: usize, seed: u64, fail_at_s: f64) -> Vec<FailureSummary> {
    let (cluster, profiles) = minsky_cluster(5);
    let trace = WorkloadGenerator::with_defaults(seed).generate(n_jobs);
    // Each policy's clean+failed simulation pair is independent — sweep
    // them on the worker pool.
    par_map(PolicyKind::ALL.to_vec(), |kind| {
        let clean = simulate(
            Arc::clone(&cluster),
            Arc::clone(&profiles),
            Policy::new(kind),
            trace.clone(),
        );
        let config = SimConfig::new(Policy::new(kind))
            .with_machine_failures(vec![(fail_at_s, MachineId(2))]);
        let failed = Simulation::new(
            Arc::clone(&cluster),
            Arc::clone(&profiles),
            config,
        )
        .run(trace.clone());
        let qos: Vec<f64> = failed.records.iter().map(|r| r.qos_slowdown()).collect();
        FailureSummary {
            kind,
            makespan_clean_s: clean.makespan_s,
            makespan_failed_s: failed.makespan_s,
            restarted_jobs: failed.records.iter().filter(|r| r.restarts > 0).count(),
            mean_qos_failed: mean(&qos),
            slo_violations: failed.slo_violations,
        }
    })
}

/// Renders the resilience table.
pub fn render() -> String {
    let mut t = TextTable::new(
        "F1 (ours) — machine 2 fails at t=600 s (100 jobs, 5 machines)",
        &["policy", "clean makespan (s)", "failed makespan (s)", "overhead", "restarts", "mean QoS", "SLO viol."],
    );
    for s in run(100, 1001, 600.0) {
        t.row(vec![
            s.kind.to_string(),
            f(s.makespan_clean_s, 0),
            f(s.makespan_failed_s, 0),
            format!("{:+.1}%", s.overhead() * 100.0),
            s.restarted_jobs.to_string(),
            f(s.mean_qos_failed, 3),
            s.slo_violations.to_string(),
        ]);
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failures_cost_time_but_lose_no_jobs() {
        for s in run(40, 1001, 300.0) {
            assert!(
                s.makespan_failed_s >= s.makespan_clean_s - 1e-6,
                "{}: failure cannot speed things up",
                s.kind
            );
            assert!(s.restarted_jobs >= 1, "{}: nobody restarted?", s.kind);
        }
    }

    #[test]
    fn postponing_policy_keeps_its_guarantee_through_failures() {
        let s = run(40, 1001, 300.0);
        let tap = s.iter().find(|x| x.kind == PolicyKind::TopoAwareP).unwrap();
        assert_eq!(tap.slo_violations, 0);
    }

    #[test]
    fn renders() {
        assert!(render().contains("overhead"));
    }
}
