//! Ablation A1 — sweeping the Eq. 1/2 utility weights (αcc, αb, αd).
//!
//! The paper fixes the weights at ⅓ each (§5.2.1); this ablation shows what
//! each term buys by running the scenario-1 workload under TOPO-AWARE-P
//! with skewed weightings.

use super::fig10::mean;
use super::minsky_cluster;
use crate::table::{f, TextTable};
use gts_core::prelude::*;
use std::sync::Arc;

/// One weight configuration's outcome.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Human label ("comm-only", "equal", ...).
    pub label: String,
    /// The weights used.
    pub weights: UtilityWeights,
    /// Mean QoS slowdown.
    pub mean_qos: f64,
    /// Mean waiting time.
    pub mean_wait_s: f64,
    /// SLO violations.
    pub slo_violations: usize,
    /// Makespan.
    pub makespan_s: f64,
}

/// The sweep grid: each term alone, pairs, and the paper's default.
pub fn weight_grid() -> Vec<(String, UtilityWeights)> {
    let mk = |l: &str, cc: f64, b: f64, d: f64| {
        (l.to_string(), UtilityWeights::new(cc, b, d).expect("grid weights sum to 1"))
    };
    vec![
        mk("comm-only", 1.0, 0.0, 0.0),
        mk("interference-only", 0.0, 1.0, 0.0),
        mk("fragmentation-only", 0.0, 0.0, 1.0),
        mk("comm+interf", 0.5, 0.5, 0.0),
        mk("equal (paper)", 1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0),
        mk("comm-heavy", 0.6, 0.2, 0.2),
    ]
}

/// Runs the sweep over a generated workload.
pub fn run(n_jobs: usize, n_machines: usize, seed: u64) -> Vec<AblationRow> {
    let (cluster, profiles) = minsky_cluster(n_machines);
    let trace = WorkloadGenerator::with_defaults(seed).generate(n_jobs);
    weight_grid()
        .into_iter()
        .map(|(label, weights)| {
            let policy = Policy { kind: PolicyKind::TopoAwareP, weights };
            let res = simulate(
                Arc::clone(&cluster),
                Arc::clone(&profiles),
                policy,
                trace.clone(),
            );
            let qos: Vec<f64> = res.records.iter().map(|r| r.qos_slowdown()).collect();
            AblationRow {
                label,
                weights,
                mean_qos: mean(&qos),
                mean_wait_s: res.mean_waiting_s(),
                slo_violations: res.slo_violations,
                makespan_s: res.makespan_s,
            }
        })
        .collect()
}

/// Renders the ablation table.
pub fn render() -> String {
    let mut t = TextTable::new(
        "A1 — utility-weight ablation (TOPO-AWARE-P, 100 jobs / 5 machines)",
        &["weights (cc/b/d)", "mean QoS slowdown", "mean wait (s)", "SLO viol.", "makespan (s)"],
    );
    for r in run(100, 5, 1001) {
        t.row(vec![
            format!("{} ({:.2}/{:.2}/{:.2})", r.label, r.weights.cc, r.weights.b, r.weights.d),
            f(r.mean_qos, 3),
            f(r.mean_wait_s, 1),
            r.slo_violations.to_string(),
            f(r.makespan_s, 0),
        ]);
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_valid_and_complete() {
        let grid = weight_grid();
        assert_eq!(grid.len(), 6);
        for (_, w) in grid {
            assert!((w.cc + w.b + w.d - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sweep_runs_and_every_config_completes_the_workload() {
        let rows = run(30, 3, 5);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.makespan_s > 0.0, "{}", r.label);
            assert!(r.mean_qos >= 0.0);
        }
    }

    #[test]
    fn comm_only_weighting_matches_comm_focus() {
        // With αcc = 1 the policy only respects communication quality: it
        // never knowingly accepts a spread placement for comm-heavy jobs,
        // so its mean QoS slowdown stays in the same league as the default.
        let rows = run(30, 3, 5);
        let comm = rows.iter().find(|r| r.label == "comm-only").unwrap();
        let equal = rows.iter().find(|r| r.label == "equal (paper)").unwrap();
        assert!(comm.mean_qos <= equal.mean_qos + 0.25);
    }
}
