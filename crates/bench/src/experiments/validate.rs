//! The reproduction scorecard: every paper claim as a programmatic check.
//!
//! `repro validate` runs the full battery and prints one verdict per claim —
//! the same assertions the test suite enforces, gathered into a single
//! human-readable report for EXPERIMENTS.md audits.

use super::{fig10, fig4, fig5, fig6, fig8, fig9, overhead, pcie};
use crate::table::TextTable;
use gts_core::prelude::*;

/// One checked claim.
#[derive(Debug, Clone)]
pub struct Check {
    /// Which figure/section the claim comes from.
    pub source: &'static str,
    /// The claim, paraphrased.
    pub claim: &'static str,
    /// What we measured, formatted.
    pub measured: String,
    /// Did the measured value satisfy the claim?
    pub pass: bool,
}

fn check(
    source: &'static str,
    claim: &'static str,
    measured: String,
    pass: bool,
) -> Check {
    Check { source, claim, measured, pass }
}

/// Runs the full scorecard. Expensive pieces reuse the standard seeds so
/// results match the documented tables.
pub fn run() -> Vec<Check> {
    let mut checks = Vec::new();

    // Fig. 4 anchors.
    let f4 = fig4::run();
    let s = |m: NnModel, b: u32| {
        f4.iter()
            .find(|p| p.model == m && p.batch == b)
            .map(|p| p.speedup)
            .unwrap_or(f64::NAN)
    };
    let a1 = s(NnModel::AlexNet, 1);
    checks.push(check(
        "Fig. 4",
        "AlexNet batch 1 pack speedup ≈ 1.30×",
        format!("{a1:.3}x"),
        (1.25..1.35).contains(&a1),
    ));
    let a128 = s(NnModel::AlexNet, 128);
    checks.push(check(
        "Fig. 4",
        "parity past batch 16 (batch 128 ≈ 1.0×)",
        format!("{a128:.3}x"),
        (0.98..1.05).contains(&a128),
    ));
    let g1 = s(NnModel::GoogLeNet, 1);
    checks.push(check(
        "Fig. 4",
        "GoogLeNet shows little or no impact",
        format!("{g1:.3}x"),
        (0.98..1.08).contains(&g1),
    ));

    // Fig. 5 endpoints.
    let traces = fig5::run(42);
    let bw = |b: u32| {
        traces
            .iter()
            .find(|t| t.batch == b)
            .map(|t| t.trace.mean_gbs())
            .unwrap_or(f64::NAN)
    };
    checks.push(check(
        "Fig. 5",
        "NVLink ≈ 40 GB/s at batch 1",
        format!("{:.1} GB/s", bw(1)),
        (37.0..43.0).contains(&bw(1)),
    ));
    checks.push(check(
        "Fig. 5",
        "NVLink ≈ 6 GB/s at batch 128",
        format!("{:.1} GB/s", bw(128)),
        (4.5..7.5).contains(&bw(128)),
    ));

    // Fig. 6 anchors.
    let m6 = fig6::run(1.0);
    let cell = |v: BatchClass, a: BatchClass| m6.slowdown[v.index()][a.index()];
    let tt = cell(BatchClass::Tiny, BatchClass::Tiny);
    checks.push(check(
        "Fig. 6",
        "tiny|tiny collocation slowdown ≈ 30 %",
        format!("{:.1} %", tt * 100.0),
        (tt - 0.30).abs() < 0.02,
    ));
    let tb = cell(BatchClass::Tiny, BatchClass::Big);
    checks.push(check(
        "Fig. 6",
        "tiny suffers ≈ 24 % from a big-batch aggressor",
        format!("{:.1} %", tb * 100.0),
        (tb - 0.24).abs() < 0.02,
    ));
    let bb = cell(BatchClass::Big, BatchClass::Big);
    checks.push(check(
        "Fig. 6",
        "big|big interference ≈ none",
        format!("{:.1} %", bb * 100.0),
        bb < 0.03,
    ));

    // Fig. 8 headline.
    let runs = fig8::run();
    let makespan = |k: PolicyKind| {
        runs.iter()
            .find(|r| r.kind == k)
            .map(|r| r.result.makespan_s)
            .unwrap_or(f64::NAN)
    };
    let speedup = makespan(PolicyKind::BestFit) / makespan(PolicyKind::TopoAwareP);
    checks.push(check(
        "Fig. 8",
        "TOPO-AWARE-P ≈ 1.27–1.30× faster cumulative time",
        format!("{speedup:.2}x"),
        (1.15..1.45).contains(&speedup),
    ));
    let tap_viol = runs
        .iter()
        .find(|r| r.kind == PolicyKind::TopoAwareP)
        .map(|r| r.result.slo_violations)
        .unwrap_or(99);
    checks.push(check(
        "Fig. 8",
        "TOPO-AWARE-P has zero SLO violations",
        format!("{tap_viol}"),
        tap_viol == 0,
    ));
    let greedy_spread = (makespan(PolicyKind::Fcfs) - makespan(PolicyKind::TopoAware)).abs()
        / makespan(PolicyKind::TopoAware);
    checks.push(check(
        "Fig. 8",
        "FCFS/BF/TOPO-AWARE cluster within a few percent",
        format!("{:.1} % spread", greedy_spread * 100.0),
        greedy_spread < 0.05,
    ));

    // Fig. 9 validation.
    let rows = fig9::run(PolicyKind::TopoAwareP);
    let worst_rel = rows.iter().map(|r| r.rel_error()).fold(0.0, f64::max);
    checks.push(check(
        "Fig. 9",
        "simulator matches the prototype per job",
        format!("worst rel. error {:.1} %", worst_rel * 100.0),
        worst_rel < 0.15,
    ));

    // Fig. 10 orderings.
    let s10 = fig10::run(100, 5, 1001);
    let by = |k: PolicyKind| s10.iter().find(|x| x.kind == k).unwrap();
    checks.push(check(
        "Fig. 10",
        "TOPO-AWARE-P violates no SLOs at cluster scale",
        format!("{}", by(PolicyKind::TopoAwareP).slo_violations),
        by(PolicyKind::TopoAwareP).slo_violations == 0,
    ));
    checks.push(check(
        "Fig. 10",
        "topology-aware policies cut queue waiting time",
        format!(
            "{:.0} s (TA-P) vs {:.0} s (FCFS)",
            by(PolicyKind::TopoAwareP).mean_wait_s,
            by(PolicyKind::Fcfs).mean_wait_s
        ),
        by(PolicyKind::TopoAwareP).mean_wait_s < by(PolicyKind::Fcfs).mean_wait_s,
    ));
    checks.push(check(
        "abstract",
        "higher effective resource utilization",
        format!(
            "{:.1} % (TA-P) vs {:.1} % (FCFS)",
            by(PolicyKind::TopoAwareP).gpu_utilization * 100.0,
            by(PolicyKind::Fcfs).gpu_utilization * 100.0
        ),
        by(PolicyKind::TopoAwareP).gpu_utilization > by(PolicyKind::Fcfs).gpu_utilization,
    ));

    // §5.5.3 overhead asymmetry.
    let fcfs = overhead::measure(PolicyKind::Fcfs, 100, 30);
    let ta = overhead::measure(PolicyKind::TopoAware, 100, 30);
    let ratio = ta.mean_s / fcfs.mean_s.max(1e-12);
    checks.push(check(
        "§5.5.3",
        "topology-aware decisions cost more than greedy",
        format!("{ratio:.0}x at 100 machines"),
        ratio > 2.0,
    ));

    // §3.2 PCIe ordering.
    let pcie_points = pcie::run();
    let p1 = pcie_points.iter().find(|p| p.batch == 1).unwrap();
    checks.push(check(
        "§3.2",
        "PCIe machine still benefits from pack, less than NVLink",
        format!("NVLink {:.2}x vs PCIe {:.2}x", p1.nvlink, p1.pcie),
        p1.pcie > 1.05 && p1.nvlink > p1.pcie,
    ));

    checks
}

/// Renders the scorecard.
pub fn render() -> String {
    let checks = run();
    let mut t = TextTable::new(
        "Reproduction scorecard — paper claims vs this implementation",
        &["source", "claim", "measured", "verdict"],
    );
    let mut passed = 0;
    for c in &checks {
        if c.pass {
            passed += 1;
        }
        t.row(vec![
            c.source.to_string(),
            c.claim.to_string(),
            c.measured.clone(),
            if c.pass { "PASS".into() } else { "FAIL".into() },
        ]);
    }
    format!("{t}  {passed}/{} claims reproduced\n", checks.len())
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_claim_passes() {
        let checks = super::run();
        let failed: Vec<String> = checks
            .iter()
            .filter(|c| !c.pass)
            .map(|c| format!("{}: {} (measured {})", c.source, c.claim, c.measured))
            .collect();
        assert!(failed.is_empty(), "failed claims:\n{}", failed.join("\n"));
        assert!(checks.len() >= 15);
    }
}
