//! H1 (ours) — heterogeneous fleet: Minskys and DGX-1s in one cluster.
//!
//! Cloud fleets mix machine generations; the topology-aware policies must
//! route wide jobs to the 8-GPU boxes while keeping narrow jobs off them.
//! The workload mixes GPU request sizes including 8-GPU jobs only the
//! DGX-1s can host.

use super::fig10::mean;
use crate::table::{f, TextTable};
use gts_core::prelude::*;
use std::sync::Arc;

/// One policy's summary on the mixed fleet.
#[derive(Debug, Clone)]
pub struct HeteroSummary {
    /// Policy.
    pub kind: PolicyKind,
    /// Jobs completed.
    pub completed: usize,
    /// Mean QoS slowdown.
    pub mean_qos: f64,
    /// Mean wait.
    pub mean_wait_s: f64,
    /// SLO violations.
    pub slo_violations: usize,
    /// Fraction of 8-GPU jobs whose GPUs all sit on a DGX-1 quad pair.
    pub wide_on_dgx: f64,
}

fn mixed_cluster(
    n_minsky: usize,
    n_dgx: usize,
) -> (Arc<ClusterTopology>, Arc<ProfileLibrary>) {
    let minsky = Arc::new(power8_minsky());
    let dgx = Arc::new(dgx1());
    let mut machines: Vec<Arc<MachineTopology>> = Vec::new();
    for _ in 0..n_minsky {
        machines.push(Arc::clone(&minsky));
    }
    for _ in 0..n_dgx {
        machines.push(Arc::clone(&dgx));
    }
    // Profiles are measured on the Minsky (the §5.1 campaign); interference
    // coefficients are placement-independent, and route-specific timing
    // comes from the perf model per machine at run time.
    let profiles = Arc::new(ProfileLibrary::generate(&minsky, 42));
    (Arc::new(ClusterTopology::from_machines(machines)), profiles)
}

/// A workload with 1/2/4/8-GPU requests.
fn mixed_workload(n: usize, seed: u64) -> Vec<JobSpec> {
    let mut jobs = WorkloadGenerator::with_defaults(seed).generate(n);
    // Recast every fourth 4-GPU job as an 8-GPU job.
    let mut wide = 0;
    for j in jobs.iter_mut() {
        if j.n_gpus == 4 {
            wide += 1;
            if wide % 2 == 0 {
                j.n_gpus = 8;
            }
        }
    }
    jobs
}

/// Runs all policies on the mixed fleet.
pub fn run(n_jobs: usize, seed: u64) -> Vec<HeteroSummary> {
    let (cluster, profiles) = mixed_cluster(3, 2);
    let trace = mixed_workload(n_jobs, seed);
    PolicyKind::ALL
        .iter()
        .map(|&kind| {
            let res = simulate(
                Arc::clone(&cluster),
                Arc::clone(&profiles),
                Policy::new(kind),
                trace.clone(),
            );
            let qos: Vec<f64> = res.records.iter().map(|r| r.qos_slowdown()).collect();
            let wide_jobs: Vec<_> = res
                .records
                .iter()
                .filter(|r| r.spec.n_gpus == 8)
                .collect();
            let wide_on_dgx = if wide_jobs.is_empty() {
                1.0
            } else {
                wide_jobs
                    .iter()
                    .filter(|r| r.gpus.iter().all(|g| g.machine.index() >= 3))
                    .count() as f64
                    / wide_jobs.len() as f64
            };
            HeteroSummary {
                kind,
                completed: res.records.len(),
                mean_qos: mean(&qos),
                mean_wait_s: res.mean_waiting_s(),
                slo_violations: res.slo_violations,
                wide_on_dgx,
            }
        })
        .collect()
}

/// Renders the fleet table.
pub fn render() -> String {
    let mut t = TextTable::new(
        "H1 (ours) — heterogeneous fleet: 3× Minsky + 2× DGX-1, 80 jobs (1–8 GPUs)",
        &["policy", "completed", "mean QoS", "mean wait (s)", "SLO viol.", "8-GPU jobs on DGX-1"],
    );
    for s in run(80, 7007) {
        t.row(vec![
            s.kind.to_string(),
            s.completed.to_string(),
            f(s.mean_qos, 3),
            f(s.mean_wait_s, 1),
            s.slo_violations.to_string(),
            format!("{:.0}%", s.wide_on_dgx * 100.0),
        ]);
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_policy_completes_the_mixed_workload() {
        for s in run(40, 7007) {
            assert_eq!(s.completed, 40, "{}", s.kind);
            // Wide jobs can only run on the DGX-1s.
            assert!((s.wide_on_dgx - 1.0).abs() < 1e-9, "{}", s.kind);
        }
    }

    #[test]
    fn topo_aware_p_keeps_its_slo_guarantee_on_mixed_fleets() {
        let s = run(40, 7007);
        let tap = s.iter().find(|x| x.kind == PolicyKind::TopoAwareP).unwrap();
        assert_eq!(tap.slo_violations, 0);
    }

    #[test]
    fn renders() {
        assert!(render().contains("DGX-1"));
    }
}
