//! Table 1 — the prototype scenario's workload configuration.

use crate::table::{f, TextTable};
use gts_core::job::scenario::table1;

/// Renders Table 1 exactly as the paper lays it out (plus the calibrated
/// iteration budgets this reproduction adds).
pub fn render() -> String {
    let jobs = table1();
    let mut t = TextTable::new(
        "Table 1 — prototype workload configuration",
        &["config", "Job0", "Job1", "Job2", "Job3", "Job4", "Job5"],
    );
    let row = |label: &str, cells: Vec<String>| {
        let mut v = vec![label.to_string()];
        v.extend(cells);
        v
    };
    t.row(row(
        "DL NN",
        jobs.iter().map(|j| j.model.code().to_string()).collect(),
    ));
    t.row(row(
        "Batch size",
        jobs.iter()
            .map(|j| j.batch.representative_batch().to_string())
            .collect(),
    ));
    t.row(row(
        "Num. GPUs",
        jobs.iter().map(|j| j.n_gpus.to_string()).collect(),
    ));
    t.row(row(
        "Min. Utility",
        jobs.iter().map(|j| f(j.min_utility, 1)).collect(),
    ));
    t.row(row(
        "Arrival Time",
        jobs.iter().map(|j| format!("{:.2}s", j.arrival_s)).collect(),
    ));
    t.row(row(
        "Iterations*",
        jobs.iter().map(|j| j.iterations.to_string()).collect(),
    ));
    let mut s = t.to_string();
    s.push_str("  * iteration budgets are this reproduction's calibration (see DESIGN.md)\n");
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_the_paper_rows() {
        let s = super::render();
        for needle in ["DL NN", "Min. Utility", "0.51s", "29.89s"] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }
}
