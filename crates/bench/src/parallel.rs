//! Order-preserving parallel map for the sweep harnesses.
//!
//! The fig10/fig11/failures/validate experiments run independent
//! simulations per `(seed, policy)` cell; each cell is deterministic, so
//! running them on a scoped worker pool changes nothing but wall-clock.
//! Thread count follows the evaluation engine's `GTS_EVAL_THREADS` knob —
//! `1` makes every sweep serial again.

use gts_core::prelude::EvalParams;

/// Maps `f` over `items` on a scoped worker pool, returning results in
/// input order. Serial when `GTS_EVAL_THREADS=1` or there is at most one
/// item.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = EvalParams::from_env().threads;
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let n_workers = threads.min(n);
    // Bounded work queue: the producer runs inside the scope and stays at
    // most 2×workers ahead of the slowest worker, instead of materializing
    // every (index, item) pair up front before a single worker starts.
    let (tx_work, rx_work) = crossbeam::channel::bounded::<(usize, T)>(2 * n_workers);
    let (tx_out, rx_out) = crossbeam::channel::unbounded::<(usize, R)>();
    let f = &f;
    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            let rx_work = rx_work.clone();
            let tx_out = tx_out.clone();
            scope.spawn(move || {
                while let Ok((i, item)) = rx_work.recv() {
                    if tx_out.send((i, f(item))).is_err() {
                        break;
                    }
                }
            });
        }
        // The producer must not hold a receiver: workers own the only
        // clones, so if every worker dies the blocked send unblocks with
        // an error instead of deadlocking.
        drop(rx_work);
        for pair in items.into_iter().enumerate() {
            if tx_work.send(pair).is_err() {
                break; // all workers gone; nothing left to feed
            }
        }
        drop(tx_work);
    });
    drop(tx_out);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in rx_out.try_iter() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every item mapped"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = par_map((0..64).collect::<Vec<u64>>(), |x| x * x);
        assert_eq!(out, (0..64).map(|x| x * x).collect::<Vec<u64>>());
    }

    #[test]
    fn handles_empty_and_singleton() {
        assert_eq!(par_map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(par_map(vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn backpressure_keeps_order_on_large_inputs() {
        // Far more items than the 2×workers channel capacity, with uneven
        // per-item cost so workers finish out of order.
        let out = par_map((0..500).collect::<Vec<u64>>(), |x| {
            if x % 7 == 0 {
                std::thread::yield_now();
            }
            x.wrapping_mul(x) ^ 0xABCD
        });
        let want: Vec<u64> = (0..500).map(|x: u64| x.wrapping_mul(x) ^ 0xABCD).collect();
        assert_eq!(out, want);
    }
}
