//! Order-preserving parallel map for the sweep harnesses.
//!
//! The fig10/fig11/failures/validate experiments run independent
//! simulations per `(seed, policy)` cell; each cell is deterministic, so
//! running them on a scoped worker pool changes nothing but wall-clock.
//! Thread count follows the evaluation engine's `GTS_EVAL_THREADS` knob —
//! `1` makes every sweep serial again.

use gts_core::prelude::EvalParams;

/// Maps `f` over `items` on a scoped worker pool, returning results in
/// input order. Serial when `GTS_EVAL_THREADS=1` or there is at most one
/// item.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = EvalParams::from_env().threads;
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let n_workers = threads.min(n);
    let (tx_work, rx_work) = crossbeam::channel::unbounded::<(usize, T)>();
    for pair in items.into_iter().enumerate() {
        if tx_work.send(pair).is_err() {
            unreachable!("work queue closed before workers spawned");
        }
    }
    drop(tx_work);
    let (tx_out, rx_out) = crossbeam::channel::unbounded::<(usize, R)>();
    let f = &f;
    std::thread::scope(|scope| {
        for _ in 0..n_workers {
            let rx_work = rx_work.clone();
            let tx_out = tx_out.clone();
            scope.spawn(move || {
                while let Ok((i, item)) = rx_work.recv() {
                    if tx_out.send((i, f(item))).is_err() {
                        break;
                    }
                }
            });
        }
    });
    drop(tx_out);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in rx_out.try_iter() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every item mapped"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = par_map((0..64).collect::<Vec<u64>>(), |x| x * x);
        assert_eq!(out, (0..64).map(|x| x * x).collect::<Vec<u64>>());
    }

    #[test]
    fn handles_empty_and_singleton() {
        assert_eq!(par_map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(par_map(vec![7], |x| x + 1), vec![8]);
    }
}
