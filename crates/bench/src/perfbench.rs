//! `gts bench` — microbenchmarks of the placement engine's hot paths.
//!
//! Three layers, timed with the vendored criterion harness and serialized
//! to `BENCH_sched.json` so the perf trajectory is tracked in-repo:
//!
//! 1. **`drb_map`** — one Algorithm 2/3 mapping on an idle Minsky machine;
//! 2. **`arrival`** — a full TOPO-AWARE `decide` on a 64-machine
//!    mostly-idle cluster, sequential reference vs the memoized+parallel
//!    engine (the ISSUE 2 acceptance measurement), plus a 256-machine
//!    cold-engine vs warm cross-event-cache arrival (DESIGN.md §9);
//! 3. **`sim`** — a whole small fig10-style simulation under both paths;
//! 4. **`sim/large_*`** — a large-cluster simulation (256 machines, 2 048
//!    jobs, arrivals dense enough that many jobs run concurrently):
//!    recompute-everything reference vs incremental event loop (the
//!    ISSUE 4 acceptance measurement) vs incremental + cross-event
//!    placement cache (the ISSUE 5 acceptance measurement). The hit rate
//!    of the cached run is measured separately via `run_with_stats` and
//!    reported as `eval_cache_hit_rate`.

use crate::experiments::minsky_cluster;
use criterion::{black_box, Criterion};
use gts_core::prelude::*;
use gts_core::sched::state::on_machine;
use gts_core::sched::StateOracle;
use std::sync::Arc;

/// One benchmark's timings (mirrors `criterion::BenchRecord`, serializable
/// with the vendored serde, which caps integers at `u64`).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct BenchEntry {
    /// `group/name` label.
    pub label: String,
    /// Mean per-iteration time, nanoseconds.
    pub mean_ns: u64,
    /// Fastest iteration, nanoseconds.
    pub min_ns: u64,
    /// Timed iterations.
    pub samples: u64,
    /// 99th-percentile latency, nanoseconds. Carried only by the
    /// `decision/huge_*` entries (worst per-decision tail across the
    /// sample runs — the quantity a mean hides once replay answers most
    /// retries in O(1)); 0 for criterion-timed entries.
    #[serde(default)]
    pub p99_ns: u64,
}

/// One machines-vs-decision-latency sample of the sharded scheduler
/// (`gts bench scale-curve`).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ScalePoint {
    /// Cluster size the sample ran at.
    pub machines: u64,
    /// Shard count (rack-aligned: one shard per rack).
    pub shards: u64,
    /// Jobs in the sustained Poisson stream.
    pub jobs: u64,
    /// `SimResult::mean_decision_s` in nanoseconds — the per-decision
    /// scheduler latency the two-level path is supposed to keep flat.
    pub mean_decision_ns: u64,
    /// End-to-end wall time of the whole run, milliseconds.
    pub wall_ms: u64,
    /// End-to-end wall time of the whole run, nanoseconds — the same
    /// measurement as `wall_ms` without the millisecond floor, so smoke
    /// points (sub-ms) and curve ratios stay meaningful.
    #[serde(default)]
    pub wall_ns: u64,
    /// Queue-drain retries answered from a decision snapshot during the
    /// run (`GTS_DECISION_REPLAY`, DESIGN.md §12).
    #[serde(default)]
    pub replay_hits: u64,
    /// Shards re-evaluated by partial replays during the run.
    #[serde(default)]
    pub replay_shards_reeval: u64,
    /// Snapshots present but unusable (guard mismatch) during the run.
    #[serde(default)]
    pub replay_full_fallbacks: u64,
}

/// Where one instrumented `sim/large_cached`-shaped run spends its wall
/// time, as fractions of the end-to-end wall (`gts bench`). `drain`
/// contains `decision` (decisions happen inside queue drains); the four
/// shares therefore do not sum to 1 — the remainder outside
/// refresh+heap+drain is event bookkeeping.
#[derive(Debug, Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
pub struct PhaseShares {
    /// Placement decisions (subset of `drain`).
    pub decision: f64,
    /// Slowdown re-derivation after event batches.
    pub refresh: f64,
    /// Completion-heap maintenance.
    pub heap: f64,
    /// `run_scheduler` queue drains, decisions included.
    pub drain: f64,
}

/// The `BENCH_sched.json` payload. Deserializable so `gts bench
/// scale-curve` can merge fresh curve points into a committed report
/// without re-running the whole suite.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct BenchReport {
    /// Worker threads the engine ran with (`GTS_EVAL_THREADS`).
    pub threads: u64,
    /// True when run with `--smoke` (tiny sample counts; numbers are only
    /// good for checking the harness, not for comparison).
    pub smoke: bool,
    /// Sequential-reference mean over engine mean for the 64-machine
    /// mostly-idle TOPO-AWARE arrival (the headline speedup).
    pub arrival_speedup: f64,
    /// Reference event-loop mean over incremental event-loop mean for the
    /// large-cluster simulation (`sim/large_reference` /
    /// `sim/large_incremental`).
    pub sim_loop_speedup: f64,
    /// Cold-engine mean over warm-cache mean for the 256-machine arrival
    /// (`arrival/topo256_cold` / `arrival/topo256_warm`) — what a
    /// steady-state arrival saves when its classes are already cached.
    pub warm_arrival_speedup: f64,
    /// Incremental mean over incremental+cache mean for the large-cluster
    /// simulation (`sim/large_incremental` / `sim/large_cached`) — the
    /// cross-event cache's end-to-end win on top of the incremental loop.
    pub sim_cache_speedup: f64,
    /// hits / (hits + misses) of the placement cache over one full
    /// `sim/large_cached`-shaped run (0 when the cache saw no lookups).
    pub eval_cache_hit_rate: f64,
    /// Single-shard mean decision latency over sharded mean decision
    /// latency for the datacenter-scale simulation
    /// (`decision/huge_single` / `decision/huge_sharded`) — the two-level
    /// scheduler's headline win.
    #[serde(default)]
    pub huge_decision_speedup: f64,
    /// Phase-time shares of one instrumented `sim/large_cached`-shaped
    /// run (all-zero in reports written before phase timing existed).
    #[serde(default)]
    pub phase_shares: PhaseShares,
    /// Machines-vs-decision-latency samples from `gts bench scale-curve`
    /// (empty until that subcommand merges them in).
    #[serde(default)]
    pub scale_curve: Vec<ScalePoint>,
    /// All benchmark timings.
    pub results: Vec<BenchEntry>,
}

impl BenchReport {
    /// Pretty JSON for `BENCH_sched.json`.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Parses a previously written `BENCH_sched.json`.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| format!("malformed bench report: {e}"))
    }

    /// Mean nanoseconds of the entry with this label, if present.
    pub fn mean_ns(&self, label: &str) -> Option<u64> {
        self.results.iter().find(|e| e.label == label).map(|e| e.mean_ns)
    }
}

/// A 64-machine Minsky cluster with a couple of tenants — the "mostly
/// idle" arrival scenario where equivalence-class memoization collapses
/// ~62 identical idle machines into one evaluation.
fn mostly_idle_state(n_machines: usize) -> ClusterState {
    let (cluster, profiles) = minsky_cluster(n_machines);
    let mut state = ClusterState::new(cluster, profiles);
    state.place(
        JobSpec::new(9001, NnModel::AlexNet, BatchClass::Small, 2),
        on_machine(MachineId(0), &[GpuId(0), GpuId(1)]),
        1.0,
    );
    state.place(
        JobSpec::new(9002, NnModel::GoogLeNet, BatchClass::Big, 1),
        on_machine(MachineId(1), &[GpuId(0)]),
        1.0,
    );
    state
}

/// A cluster of 16-GPU machines occupied with a varied tenant mix: two
/// 1-GPU jobs per machine whose profiles cycle independently, yielding
/// ~144 distinct machine classes (every 16th machine stays idle). An
/// arrival here defeats the per-arrival memoizer — almost every machine
/// is its own class — which is exactly the steady-state shape where the
/// cross-event cache pays: the cold engine runs one full DRB evaluation
/// over 14 free GPUs per class, a warm cache answers every class from
/// memory.
fn diverse_state(n_machines: usize) -> ClusterState {
    let machine = symmetric_machine("wide16", 4, 4, LinkProfile::nvlink_dual());
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 1));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, n_machines));
    let mut state = ClusterState::new(cluster, profiles);
    let models = [NnModel::AlexNet, NnModel::CaffeRef, NnModel::GoogLeNet];
    let batches =
        [BatchClass::Tiny, BatchClass::Small, BatchClass::Medium, BatchClass::Big];
    let mut id = 10_000u64;
    for m in 0..n_machines {
        if m % 16 == 0 {
            continue;
        }
        // The two tenant profiles cycle with coprime-ish periods so the
        // (tenant 0, tenant 1) pair walks all 12×12 combinations.
        let machine = MachineId(m as u32);
        for mix in [m % 12, (m / 12) % 12] {
            let spec = JobSpec::new(id, models[mix % 3], batches[mix / 3], 1);
            id += 1;
            let free = state.free_gpus(machine);
            state.place(spec, on_machine(machine, &free[..1]), 1.0);
        }
    }
    state
}

/// Runs the full microbench suite. `smoke` shrinks sample counts to keep
/// CI fast; the derived speedup is still computed (and asserted ≥ 1 by the
/// smoke test, not by this function).
pub fn run(smoke: bool) -> BenchReport {
    let samples = if smoke { 3 } else { 40 };
    let sim_samples = if smoke { 1 } else { 5 };
    let mut c = Criterion::default().with_sample_size(samples);

    // 1. drb_map on an idle machine, 2- and 4-GPU jobs.
    let idle = {
        let (cluster, profiles) = minsky_cluster(1);
        ClusterState::new(cluster, profiles)
    };
    for width in [2u32, 4] {
        let job = JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, width);
        let graph = JobGraph::from_spec(&job);
        let free = idle.free_gpus(MachineId(0));
        let oracle = StateOracle::new(&idle, MachineId(0), &job);
        c.bench_function(&format!("drb_map/minsky_{width}gpu"), |b| {
            b.iter(|| {
                black_box(
                    drb_map(&graph, &free, &oracle, UtilityWeights::default()).unwrap(),
                )
            })
        });
    }

    // 2. The headline: one TOPO-AWARE arrival on 64 mostly-idle machines.
    let state = mostly_idle_state(64);
    let job = JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 2).with_min_utility(0.5);
    let policy = Policy::new(PolicyKind::TopoAware);
    let engine = EvalParams::from_env();
    c.bench_function("arrival/topo64_sequential", |b| {
        b.iter(|| black_box(policy.decide_with(&state, &job, EvalParams::sequential())))
    });
    c.bench_function("arrival/topo64_engine", |b| {
        b.iter(|| black_box(policy.decide_with(&state, &job, engine)))
    });

    // 2b. The cross-event cache at scale: a 4-GPU arrival on 256
    // diversely occupied 16-GPU machines (~144 distinct classes, so the
    // per-arrival memoizer barely helps). Cold pays one DRB evaluation
    // per class every time; warm consults a persistent cache already
    // holding every class this state produces (one priming decision), so
    // the decision reduces to class grouping + lookups + the
    // select_candidate scan.
    let state = diverse_state(256);
    let wide_job =
        JobSpec::new(1, NnModel::AlexNet, BatchClass::Tiny, 4).with_min_utility(0.5);
    let warm_cache = EvalCache::with_capacity(4096);
    policy.decide_with_cache(&state, &wide_job, engine, Some(&warm_cache));
    c.bench_function("arrival/topo256_cold", |b| {
        b.iter(|| black_box(policy.decide_with(&state, &wide_job, engine)))
    });
    c.bench_function("arrival/topo256_warm", |b| {
        b.iter(|| {
            black_box(policy.decide_with_cache(&state, &wide_job, engine, Some(&warm_cache)))
        })
    });

    // 3. A whole small simulation (fig10-shaped) under both paths.
    let mut c_sim = Criterion::default().with_sample_size(sim_samples);
    let (cluster, profiles) = minsky_cluster(5);
    let trace = WorkloadGenerator::with_defaults(1001).generate(if smoke { 20 } else { 60 });
    for (label, eval) in [
        ("fig10_slice_sequential", EvalParams::sequential()),
        ("fig10_slice_engine", engine),
    ] {
        c_sim.bench_function(&format!("sim/{label}"), |b| {
            b.iter(|| {
                let config =
                    SimConfig::new(Policy::new(PolicyKind::TopoAwareP)).with_eval(eval);
                black_box(
                    Simulation::new(Arc::clone(&cluster), Arc::clone(&profiles), config)
                        .run(trace.clone()),
                )
            })
        });
    }

    // 4. The large-cluster simulation: incremental vs reference event loop.
    // Arrivals at 90 jobs/min over machine-filling-sized requests keep a
    // large running set alive, so the reference loop's O(J²)-per-event
    // refresh dominates; smoke shrinks the cluster and trace but keeps the
    // overlap structure.
    let (large_machines, large_jobs) = if smoke { (16, 96) } else { (256, 2048) };
    let mut c_large = Criterion::default().with_sample_size(if smoke { 1 } else { 3 });
    let gen = GeneratorConfig {
        arrival_rate_per_min: 90.0,
        iterations: 150,
        ..GeneratorConfig::default()
    };
    let (cluster, profiles) = minsky_cluster(large_machines);
    let trace = WorkloadGenerator::new(gen, 2002).generate(large_jobs);
    // The cache is toggled explicitly so `large_incremental` keeps meaning
    // what it meant before the cache existed (A/B against committed
    // baselines), regardless of the ambient `GTS_EVAL_CACHE`.
    for (label, incremental, cached) in [
        ("large_reference", false, false),
        ("large_incremental", true, false),
        ("large_cached", true, true),
    ] {
        c_large.bench_function(&format!("sim/{label}"), |b| {
            b.iter(|| {
                let config = SimConfig::new(Policy::new(PolicyKind::TopoAware))
                    .with_eval(engine)
                    .with_incremental(incremental)
                    .with_eval_cache(cached);
                black_box(
                    Simulation::new(Arc::clone(&cluster), Arc::clone(&profiles), config)
                        .run(trace.clone()),
                )
            })
        });
    }

    // One instrumented cached run for the hit rate and the phase-time
    // breakdown (not timed by criterion; its own wall clock normalizes
    // the shares).
    let stats_config = SimConfig::new(Policy::new(PolicyKind::TopoAware))
        .with_eval(engine)
        .with_incremental(true)
        .with_eval_cache(true)
        .with_phase_timing(true);
    let stats_started = std::time::Instant::now();
    let (_, loop_stats) = Simulation::new(cluster, profiles, stats_config)
        .run_with_stats(trace);
    let stats_wall_ns = stats_started.elapsed().as_nanos().max(1) as f64;
    let phase_shares = PhaseShares {
        decision: loop_stats.phase_decision_ns as f64 / stats_wall_ns,
        refresh: loop_stats.phase_refresh_ns as f64 / stats_wall_ns,
        heap: loop_stats.phase_heap_ns as f64 / stats_wall_ns,
        drain: loop_stats.phase_drain_ns as f64 / stats_wall_ns,
    };
    let lookups = loop_stats.eval_cache_hits + loop_stats.eval_cache_misses;
    let eval_cache_hit_rate = if lookups == 0 {
        0.0
    } else {
        loop_stats.eval_cache_hits as f64 / lookups as f64
    };

    // 5. The datacenter-scale trio: the single-shard reference, the serial
    // sharded two-level scheduler (shard fan-out and bound pruning pinned
    // off — the PR 6 A/B baseline) and the parallel+pruned shard path, on
    // a rack-partitioned cluster under a sustained Poisson stream dense
    // enough to keep the cluster saturated. Each variant runs SAMPLES
    // independent sims (distinct Poisson seeds over the same regime) and
    // the entries carry the mean/min across them, so the derived speedups
    // average over warm decision distributions instead of trusting one
    // run. The decision/* entries carry `SimResult::mean_decision_s` —
    // per-decision scheduler latency, the quantity the two-level path is
    // supposed to keep flat — rather than wall time.
    const HUGE_SAMPLES: usize = 5;
    let (huge_racks, huge_per_rack, huge_jobs) = if smoke { (8, 4, 256) } else { (128, 32, 50_000) };
    let huge_machines = huge_racks * huge_per_rack;
    let (huge_cluster, huge_profiles) = racked_minsky_cluster(huge_racks, huge_per_rack);
    let huge_traces: Vec<Vec<JobSpec>> = (0..HUGE_SAMPLES)
        .map(|i| {
            poisson_trace(huge_machines, (huge_jobs / HUGE_SAMPLES).max(1), 3003 + i as u64)
        })
        .collect();
    // `serial_eval` is the PR 6 A/B baseline: fan-out, bound pruning AND
    // decision replay pinned off, regardless of ambient knobs. `par_eval`
    // is the full engine with replay on.
    let serial_eval = EvalParams::from_env()
        .with_shard_par(false)
        .with_shard_bound(false)
        .with_decision_replay(false);
    let par_eval = EvalParams::from_env()
        .with_shard_par(true)
        .with_shard_bound(true)
        .with_decision_replay(true);

    let mut results: Vec<BenchEntry> = c
        .take_records()
        .into_iter()
        .chain(c_sim.take_records())
        .chain(c_large.take_records())
        .map(|r| BenchEntry {
            label: r.label,
            mean_ns: r.mean_ns.min(u64::MAX as u128) as u64,
            min_ns: r.min_ns.min(u64::MAX as u128) as u64,
            samples: r.samples as u64,
            p99_ns: 0,
        })
        .collect();
    for (label, shards, eval) in [
        ("huge_single", 1, serial_eval),
        ("huge_sharded", huge_racks, serial_eval),
        ("huge_par", huge_racks, par_eval),
    ] {
        let runs: Vec<SimRun> = huge_traces
            .iter()
            .map(|t| sharded_sim(&huge_cluster, &huge_profiles, t, shards, eval))
            .collect();
        let stat = |pick: fn(&SimRun) -> u64| {
            let vals: Vec<u64> = runs.iter().map(pick).collect();
            let mean = vals.iter().sum::<u64>() / vals.len() as u64;
            let min = *vals.iter().min().expect("at least one run");
            (mean, min)
        };
        let (wall_mean, wall_min) = stat(|r| r.wall_ns);
        let (dec_mean, dec_min) = stat(|r| r.mean_decision_ns);
        // Worst per-run p99: the decision-latency tail across every
        // sampled trace, not a tail of means.
        let dec_p99 =
            runs.iter().map(|r| r.decision_p99_ns).max().expect("at least one run");
        results.push(BenchEntry {
            label: format!("sim/{label}"),
            mean_ns: wall_mean,
            min_ns: wall_min,
            samples: runs.len() as u64,
            p99_ns: 0,
        });
        results.push(BenchEntry {
            label: format!("decision/{label}"),
            mean_ns: dec_mean,
            min_ns: dec_min,
            samples: runs.len() as u64,
            p99_ns: dec_p99,
        });
    }
    results.sort_by(|a, b| a.label.cmp(&b.label));

    let report = BenchReport {
        threads: engine.threads as u64,
        smoke,
        arrival_speedup: 0.0,
        sim_loop_speedup: 0.0,
        warm_arrival_speedup: 0.0,
        sim_cache_speedup: 0.0,
        eval_cache_hit_rate,
        huge_decision_speedup: 0.0,
        phase_shares,
        scale_curve: Vec::new(),
        results,
    };
    let ratio = |num: &str, den: &str| match (report.mean_ns(num), report.mean_ns(den)) {
        (Some(n), Some(d)) if d > 0 => n as f64 / d as f64,
        _ => 0.0,
    };
    let arrival_speedup = ratio("arrival/topo64_sequential", "arrival/topo64_engine");
    let sim_loop_speedup = ratio("sim/large_reference", "sim/large_incremental");
    let warm_arrival_speedup = ratio("arrival/topo256_cold", "arrival/topo256_warm");
    let sim_cache_speedup = ratio("sim/large_incremental", "sim/large_cached");
    let huge_decision_speedup = ratio("decision/huge_single", "decision/huge_sharded");
    BenchReport {
        arrival_speedup,
        sim_loop_speedup,
        warm_arrival_speedup,
        sim_cache_speedup,
        huge_decision_speedup,
        ..report
    }
}

/// A rack-partitioned Minsky cluster (rack-major contiguous machine ids,
/// so the auto shard spec follows the racks).
fn racked_minsky_cluster(
    n_racks: usize,
    per_rack: usize,
) -> (Arc<ClusterTopology>, Arc<ProfileLibrary>) {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous_racked(machine, n_racks, per_rack));
    (cluster, profiles)
}

/// A sustained Poisson stream sized to keep `n_machines` saturated: the
/// 90 jobs/min that loads 256 machines in `sim/large_*` is scaled
/// linearly with cluster size.
fn poisson_trace(n_machines: usize, n_jobs: usize, seed: u64) -> Vec<JobSpec> {
    let gen = GeneratorConfig {
        arrival_rate_per_min: 90.0 * (n_machines as f64 / 256.0),
        iterations: 150,
        ..GeneratorConfig::default()
    };
    WorkloadGenerator::new(gen, seed).generate(n_jobs)
}

/// Timings and loop counters from one [`sharded_sim`] run.
struct SimRun {
    /// End-to-end wall time, nanoseconds.
    wall_ns: u64,
    /// `SimResult::mean_decision_s` in nanoseconds.
    mean_decision_ns: u64,
    /// `SimLoopStats::decision_p99_ns` — the per-decision tail.
    decision_p99_ns: u64,
    /// The run's event-loop counters (replay activity, phase splits).
    stats: SimLoopStats,
}

/// One full simulation with an explicit shard count and evaluation
/// parameters, instrumented.
fn sharded_sim(
    cluster: &Arc<ClusterTopology>,
    profiles: &Arc<ProfileLibrary>,
    trace: &[JobSpec],
    shards: usize,
    eval: EvalParams,
) -> SimRun {
    let config = SimConfig::new(Policy::new(PolicyKind::TopoAware))
        .with_eval(eval)
        .with_incremental(true)
        .with_eval_cache(true)
        .with_shards(shards);
    let started = std::time::Instant::now();
    let (result, stats) = Simulation::new(Arc::clone(cluster), Arc::clone(profiles), config)
        .run_with_stats(trace.to_vec());
    let wall_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    SimRun {
        wall_ns,
        mean_decision_ns: (result.mean_decision_s * 1e9).round() as u64,
        decision_p99_ns: stats.decision_p99_ns,
        stats,
    }
}

/// Runs the sharded scheduler across a sweep of cluster sizes and returns
/// one machines-vs-decision-latency point per size (`gts bench
/// scale-curve`). Rack size is fixed (32 machines full, 4 smoke) so the
/// shard count grows with the cluster, as a rack-aligned deployment's
/// would; jobs and arrival rate scale linearly so every size sees the
/// same saturation regime.
pub fn scale_curve(smoke: bool) -> Vec<ScalePoint> {
    let (sizes, per_rack, jobs_per_machine): (&[usize], usize, usize) = if smoke {
        (&[16, 32, 64], 4, 4)
    } else {
        (&[256, 1024, 4096, 10_240], 32, 6)
    };
    sizes
        .iter()
        .map(|&machines| {
            let n_racks = machines / per_rack;
            let (cluster, profiles) = racked_minsky_cluster(n_racks, per_rack);
            let jobs = machines * jobs_per_machine;
            let trace = poisson_trace(machines, jobs, 3003);
            let run =
                sharded_sim(&cluster, &profiles, &trace, n_racks, EvalParams::from_env());
            ScalePoint {
                machines: machines as u64,
                shards: n_racks as u64,
                jobs: jobs as u64,
                mean_decision_ns: run.mean_decision_ns,
                wall_ms: run.wall_ns / 1_000_000,
                wall_ns: run.wall_ns,
                replay_hits: run.stats.replay_hits,
                replay_shards_reeval: run.stats.replay_shards_reeval,
                replay_full_fallbacks: run.stats.replay_full_fallbacks,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_produces_all_entries_and_json() {
        let report = run(true);
        assert!(report.smoke);
        for label in [
            "drb_map/minsky_2gpu",
            "drb_map/minsky_4gpu",
            "arrival/topo64_sequential",
            "arrival/topo64_engine",
            "arrival/topo256_cold",
            "arrival/topo256_warm",
            "sim/fig10_slice_sequential",
            "sim/fig10_slice_engine",
            "sim/large_reference",
            "sim/large_incremental",
            "sim/large_cached",
            "sim/huge_single",
            "sim/huge_sharded",
            "sim/huge_par",
            "decision/huge_single",
            "decision/huge_sharded",
            "decision/huge_par",
        ] {
            assert!(
                report.mean_ns(label).is_some_and(|ns| ns > 0),
                "missing or empty bench {label}"
            );
        }
        // The huge decision latencies feed huge_decision_speedup — they
        // must aggregate several independent runs, not trust one sample,
        // and carry the per-decision tail alongside the mean.
        for label in ["decision/huge_single", "decision/huge_sharded", "decision/huge_par"] {
            let entry = report.results.iter().find(|e| e.label == label).unwrap();
            assert!(entry.samples >= 5, "{label} ran {} samples, need ≥ 5", entry.samples);
            assert!(entry.min_ns <= entry.mean_ns, "{label} min above mean");
            assert!(entry.p99_ns > 0, "{label} missing its p99 tail");
            assert!(entry.p99_ns >= entry.min_ns, "{label} p99 below min");
        }
        // Phase shares come from the instrumented run: decisions happen
        // inside drains, and every share is a fraction of the wall.
        let ps = report.phase_shares;
        for (name, share) in
            [("decision", ps.decision), ("refresh", ps.refresh), ("heap", ps.heap), ("drain", ps.drain)]
        {
            assert!((0.0..=1.0).contains(&share), "phase share {name} = {share} not a fraction");
        }
        assert!(ps.drain > 0.0, "the instrumented run must meter its drains");
        assert!(ps.drain >= ps.decision, "decisions happen inside drains");
        assert!(report.arrival_speedup > 0.0);
        assert!(report.sim_loop_speedup > 0.0);
        assert!(report.warm_arrival_speedup > 0.0);
        assert!(report.sim_cache_speedup > 0.0);
        assert!(report.huge_decision_speedup > 0.0);
        assert!(
            (0.0..=1.0).contains(&report.eval_cache_hit_rate),
            "hit rate must be a ratio, got {}",
            report.eval_cache_hit_rate
        );
        let json = report.to_json();
        assert!(json.contains("arrival_speedup"));
        assert!(json.contains("sim_loop_speedup"));
        assert!(json.contains("warm_arrival_speedup"));
        assert!(json.contains("sim_cache_speedup"));
        assert!(json.contains("eval_cache_hit_rate"));
        assert!(json.contains("topo64_engine"));
        assert!(json.contains("large_incremental"));
        assert!(json.contains("large_cached"));
        assert!(json.contains("huge_decision_speedup"));
        // The merge path `gts bench scale-curve` relies on: reports round-
        // trip through JSON, including one with curve points attached.
        let mut back = BenchReport::from_json(&json).expect("report round-trips");
        assert_eq!(back.results.len(), report.results.len());
        assert!(back.scale_curve.is_empty(), "run() leaves the curve to the subcommand");
        back.scale_curve = vec![ScalePoint {
            machines: 16,
            shards: 4,
            jobs: 64,
            mean_decision_ns: 1,
            wall_ms: 1,
            wall_ns: 1_000_000,
            replay_hits: 0,
            replay_shards_reeval: 0,
            replay_full_fallbacks: 0,
        }];
        let merged = BenchReport::from_json(&back.to_json()).expect("merged round-trips");
        assert_eq!(merged.scale_curve.len(), 1);
        assert!(BenchReport::from_json("{broken").is_err());
    }

    /// The scale-curve sweep must produce one point per cluster size, with
    /// rack-aligned shard counts and live latency numbers.
    #[test]
    fn scale_curve_smoke_produces_ordered_points() {
        let points = scale_curve(true);
        assert_eq!(points.len(), 3);
        for w in points.windows(2) {
            assert!(w[0].machines < w[1].machines, "sizes must ascend");
        }
        for p in &points {
            assert_eq!(p.machines % p.shards, 0, "shards must tile the cluster");
            assert!(p.jobs > 0);
            assert!(p.mean_decision_ns > 0, "decision latency unmeasured at {}", p.machines);
            assert!(p.wall_ns > 0, "wall unmeasured at {}", p.machines);
            assert_eq!(p.wall_ms, p.wall_ns / 1_000_000, "wall_ms must floor wall_ns");
        }
        // The saturated curve regime drains queues across completions, so
        // decision replay must actually fire somewhere in the sweep
        // (ambient GTS_DECISION_REPLAY=0 legs pin it off and skip this).
        if EvalParams::from_env().decision_replay {
            assert!(
                points.iter().any(|p| p.replay_hits > 0),
                "no scale-curve point saw a replay hit"
            );
        }
    }

    #[test]
    fn engine_and_sequential_pick_the_same_placement() {
        let state = mostly_idle_state(64);
        let job =
            JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 2).with_min_utility(0.5);
        let policy = Policy::new(PolicyKind::TopoAware);
        let seq = policy.decide_with(&state, &job, EvalParams::sequential());
        let eng = policy.decide_with(&state, &job, EvalParams::parallel(4));
        assert_eq!(seq, eng);
    }
}
