//! `gts bench` — microbenchmarks of the placement engine's hot paths.
//!
//! Three layers, timed with the vendored criterion harness and serialized
//! to `BENCH_sched.json` so the perf trajectory is tracked in-repo:
//!
//! 1. **`drb_map`** — one Algorithm 2/3 mapping on an idle Minsky machine;
//! 2. **`arrival`** — a full TOPO-AWARE `decide` on a 64-machine
//!    mostly-idle cluster, sequential reference vs the memoized+parallel
//!    engine (the ISSUE 2 acceptance measurement), plus a 256-machine
//!    cold-engine vs warm cross-event-cache arrival (DESIGN.md §9);
//! 3. **`sim`** — a whole small fig10-style simulation under both paths;
//! 4. **`sim/large_*`** — a large-cluster simulation (256 machines, 2 048
//!    jobs, arrivals dense enough that many jobs run concurrently):
//!    recompute-everything reference vs incremental event loop (the
//!    ISSUE 4 acceptance measurement) vs incremental + cross-event
//!    placement cache (the ISSUE 5 acceptance measurement). The hit rate
//!    of the cached run is measured separately via `run_with_stats` and
//!    reported as `eval_cache_hit_rate`.

use crate::experiments::minsky_cluster;
use criterion::{black_box, Criterion};
use gts_core::prelude::*;
use gts_core::sched::state::on_machine;
use gts_core::sched::StateOracle;
use std::sync::Arc;

/// One benchmark's timings (mirrors `criterion::BenchRecord`, serializable
/// with the vendored serde, which caps integers at `u64`).
#[derive(Debug, Clone, serde::Serialize)]
pub struct BenchEntry {
    /// `group/name` label.
    pub label: String,
    /// Mean per-iteration time, nanoseconds.
    pub mean_ns: u64,
    /// Fastest iteration, nanoseconds.
    pub min_ns: u64,
    /// Timed iterations.
    pub samples: u64,
}

/// The `BENCH_sched.json` payload.
#[derive(Debug, Clone, serde::Serialize)]
pub struct BenchReport {
    /// Worker threads the engine ran with (`GTS_EVAL_THREADS`).
    pub threads: u64,
    /// True when run with `--smoke` (tiny sample counts; numbers are only
    /// good for checking the harness, not for comparison).
    pub smoke: bool,
    /// Sequential-reference mean over engine mean for the 64-machine
    /// mostly-idle TOPO-AWARE arrival (the headline speedup).
    pub arrival_speedup: f64,
    /// Reference event-loop mean over incremental event-loop mean for the
    /// large-cluster simulation (`sim/large_reference` /
    /// `sim/large_incremental`).
    pub sim_loop_speedup: f64,
    /// Cold-engine mean over warm-cache mean for the 256-machine arrival
    /// (`arrival/topo256_cold` / `arrival/topo256_warm`) — what a
    /// steady-state arrival saves when its classes are already cached.
    pub warm_arrival_speedup: f64,
    /// Incremental mean over incremental+cache mean for the large-cluster
    /// simulation (`sim/large_incremental` / `sim/large_cached`) — the
    /// cross-event cache's end-to-end win on top of the incremental loop.
    pub sim_cache_speedup: f64,
    /// hits / (hits + misses) of the placement cache over one full
    /// `sim/large_cached`-shaped run (0 when the cache saw no lookups).
    pub eval_cache_hit_rate: f64,
    /// All benchmark timings.
    pub results: Vec<BenchEntry>,
}

impl BenchReport {
    /// Pretty JSON for `BENCH_sched.json`.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Mean nanoseconds of the entry with this label, if present.
    pub fn mean_ns(&self, label: &str) -> Option<u64> {
        self.results.iter().find(|e| e.label == label).map(|e| e.mean_ns)
    }
}

/// A 64-machine Minsky cluster with a couple of tenants — the "mostly
/// idle" arrival scenario where equivalence-class memoization collapses
/// ~62 identical idle machines into one evaluation.
fn mostly_idle_state(n_machines: usize) -> ClusterState {
    let (cluster, profiles) = minsky_cluster(n_machines);
    let mut state = ClusterState::new(cluster, profiles);
    state.place(
        JobSpec::new(9001, NnModel::AlexNet, BatchClass::Small, 2),
        on_machine(MachineId(0), &[GpuId(0), GpuId(1)]),
        1.0,
    );
    state.place(
        JobSpec::new(9002, NnModel::GoogLeNet, BatchClass::Big, 1),
        on_machine(MachineId(1), &[GpuId(0)]),
        1.0,
    );
    state
}

/// A cluster of 16-GPU machines occupied with a varied tenant mix: two
/// 1-GPU jobs per machine whose profiles cycle independently, yielding
/// ~144 distinct machine classes (every 16th machine stays idle). An
/// arrival here defeats the per-arrival memoizer — almost every machine
/// is its own class — which is exactly the steady-state shape where the
/// cross-event cache pays: the cold engine runs one full DRB evaluation
/// over 14 free GPUs per class, a warm cache answers every class from
/// memory.
fn diverse_state(n_machines: usize) -> ClusterState {
    let machine = symmetric_machine("wide16", 4, 4, LinkProfile::nvlink_dual());
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 1));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, n_machines));
    let mut state = ClusterState::new(cluster, profiles);
    let models = [NnModel::AlexNet, NnModel::CaffeRef, NnModel::GoogLeNet];
    let batches =
        [BatchClass::Tiny, BatchClass::Small, BatchClass::Medium, BatchClass::Big];
    let mut id = 10_000u64;
    for m in 0..n_machines {
        if m % 16 == 0 {
            continue;
        }
        // The two tenant profiles cycle with coprime-ish periods so the
        // (tenant 0, tenant 1) pair walks all 12×12 combinations.
        let machine = MachineId(m as u32);
        for mix in [m % 12, (m / 12) % 12] {
            let spec = JobSpec::new(id, models[mix % 3], batches[mix / 3], 1);
            id += 1;
            let free = state.free_gpus(machine);
            state.place(spec, on_machine(machine, &free[..1]), 1.0);
        }
    }
    state
}

/// Runs the full microbench suite. `smoke` shrinks sample counts to keep
/// CI fast; the derived speedup is still computed (and asserted ≥ 1 by the
/// smoke test, not by this function).
pub fn run(smoke: bool) -> BenchReport {
    let samples = if smoke { 3 } else { 40 };
    let sim_samples = if smoke { 1 } else { 5 };
    let mut c = Criterion::default().with_sample_size(samples);

    // 1. drb_map on an idle machine, 2- and 4-GPU jobs.
    let idle = {
        let (cluster, profiles) = minsky_cluster(1);
        ClusterState::new(cluster, profiles)
    };
    for width in [2u32, 4] {
        let job = JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, width);
        let graph = JobGraph::from_spec(&job);
        let free = idle.free_gpus(MachineId(0));
        let oracle = StateOracle::new(&idle, MachineId(0), &job);
        c.bench_function(&format!("drb_map/minsky_{width}gpu"), |b| {
            b.iter(|| {
                black_box(
                    drb_map(&graph, &free, &oracle, UtilityWeights::default()).unwrap(),
                )
            })
        });
    }

    // 2. The headline: one TOPO-AWARE arrival on 64 mostly-idle machines.
    let state = mostly_idle_state(64);
    let job = JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 2).with_min_utility(0.5);
    let policy = Policy::new(PolicyKind::TopoAware);
    let engine = EvalParams::from_env();
    c.bench_function("arrival/topo64_sequential", |b| {
        b.iter(|| black_box(policy.decide_with(&state, &job, EvalParams::sequential())))
    });
    c.bench_function("arrival/topo64_engine", |b| {
        b.iter(|| black_box(policy.decide_with(&state, &job, engine)))
    });

    // 2b. The cross-event cache at scale: a 4-GPU arrival on 256
    // diversely occupied 16-GPU machines (~144 distinct classes, so the
    // per-arrival memoizer barely helps). Cold pays one DRB evaluation
    // per class every time; warm consults a persistent cache already
    // holding every class this state produces (one priming decision), so
    // the decision reduces to class grouping + lookups + the
    // select_candidate scan.
    let state = diverse_state(256);
    let wide_job =
        JobSpec::new(1, NnModel::AlexNet, BatchClass::Tiny, 4).with_min_utility(0.5);
    let warm_cache = EvalCache::with_capacity(4096);
    policy.decide_with_cache(&state, &wide_job, engine, Some(&warm_cache));
    c.bench_function("arrival/topo256_cold", |b| {
        b.iter(|| black_box(policy.decide_with(&state, &wide_job, engine)))
    });
    c.bench_function("arrival/topo256_warm", |b| {
        b.iter(|| {
            black_box(policy.decide_with_cache(&state, &wide_job, engine, Some(&warm_cache)))
        })
    });

    // 3. A whole small simulation (fig10-shaped) under both paths.
    let mut c_sim = Criterion::default().with_sample_size(sim_samples);
    let (cluster, profiles) = minsky_cluster(5);
    let trace = WorkloadGenerator::with_defaults(1001).generate(if smoke { 20 } else { 60 });
    for (label, eval) in [
        ("fig10_slice_sequential", EvalParams::sequential()),
        ("fig10_slice_engine", engine),
    ] {
        c_sim.bench_function(&format!("sim/{label}"), |b| {
            b.iter(|| {
                let config =
                    SimConfig::new(Policy::new(PolicyKind::TopoAwareP)).with_eval(eval);
                black_box(
                    Simulation::new(Arc::clone(&cluster), Arc::clone(&profiles), config)
                        .run(trace.clone()),
                )
            })
        });
    }

    // 4. The large-cluster simulation: incremental vs reference event loop.
    // Arrivals at 90 jobs/min over machine-filling-sized requests keep a
    // large running set alive, so the reference loop's O(J²)-per-event
    // refresh dominates; smoke shrinks the cluster and trace but keeps the
    // overlap structure.
    let (large_machines, large_jobs) = if smoke { (16, 96) } else { (256, 2048) };
    let mut c_large = Criterion::default().with_sample_size(if smoke { 1 } else { 3 });
    let gen = GeneratorConfig {
        arrival_rate_per_min: 90.0,
        iterations: 150,
        ..GeneratorConfig::default()
    };
    let (cluster, profiles) = minsky_cluster(large_machines);
    let trace = WorkloadGenerator::new(gen, 2002).generate(large_jobs);
    // The cache is toggled explicitly so `large_incremental` keeps meaning
    // what it meant before the cache existed (A/B against committed
    // baselines), regardless of the ambient `GTS_EVAL_CACHE`.
    for (label, incremental, cached) in [
        ("large_reference", false, false),
        ("large_incremental", true, false),
        ("large_cached", true, true),
    ] {
        c_large.bench_function(&format!("sim/{label}"), |b| {
            b.iter(|| {
                let config = SimConfig::new(Policy::new(PolicyKind::TopoAware))
                    .with_eval(engine)
                    .with_incremental(incremental)
                    .with_eval_cache(cached);
                black_box(
                    Simulation::new(Arc::clone(&cluster), Arc::clone(&profiles), config)
                        .run(trace.clone()),
                )
            })
        });
    }

    // One instrumented cached run for the hit rate (not timed).
    let stats_config = SimConfig::new(Policy::new(PolicyKind::TopoAware))
        .with_eval(engine)
        .with_incremental(true)
        .with_eval_cache(true);
    let (_, loop_stats) = Simulation::new(cluster, profiles, stats_config)
        .run_with_stats(trace);
    let lookups = loop_stats.eval_cache_hits + loop_stats.eval_cache_misses;
    let eval_cache_hit_rate = if lookups == 0 {
        0.0
    } else {
        loop_stats.eval_cache_hits as f64 / lookups as f64
    };

    let mut results: Vec<BenchEntry> = c
        .take_records()
        .into_iter()
        .chain(c_sim.take_records())
        .chain(c_large.take_records())
        .map(|r| BenchEntry {
            label: r.label,
            mean_ns: r.mean_ns.min(u64::MAX as u128) as u64,
            min_ns: r.min_ns.min(u64::MAX as u128) as u64,
            samples: r.samples as u64,
        })
        .collect();
    results.sort_by(|a, b| a.label.cmp(&b.label));

    let report = BenchReport {
        threads: engine.threads as u64,
        smoke,
        arrival_speedup: 0.0,
        sim_loop_speedup: 0.0,
        warm_arrival_speedup: 0.0,
        sim_cache_speedup: 0.0,
        eval_cache_hit_rate,
        results,
    };
    let ratio = |num: &str, den: &str| match (report.mean_ns(num), report.mean_ns(den)) {
        (Some(n), Some(d)) if d > 0 => n as f64 / d as f64,
        _ => 0.0,
    };
    let arrival_speedup = ratio("arrival/topo64_sequential", "arrival/topo64_engine");
    let sim_loop_speedup = ratio("sim/large_reference", "sim/large_incremental");
    let warm_arrival_speedup = ratio("arrival/topo256_cold", "arrival/topo256_warm");
    let sim_cache_speedup = ratio("sim/large_incremental", "sim/large_cached");
    BenchReport {
        arrival_speedup,
        sim_loop_speedup,
        warm_arrival_speedup,
        sim_cache_speedup,
        ..report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_produces_all_entries_and_json() {
        let report = run(true);
        assert!(report.smoke);
        for label in [
            "drb_map/minsky_2gpu",
            "drb_map/minsky_4gpu",
            "arrival/topo64_sequential",
            "arrival/topo64_engine",
            "arrival/topo256_cold",
            "arrival/topo256_warm",
            "sim/fig10_slice_sequential",
            "sim/fig10_slice_engine",
            "sim/large_reference",
            "sim/large_incremental",
            "sim/large_cached",
        ] {
            assert!(
                report.mean_ns(label).is_some_and(|ns| ns > 0),
                "missing or empty bench {label}"
            );
        }
        assert!(report.arrival_speedup > 0.0);
        assert!(report.sim_loop_speedup > 0.0);
        assert!(report.warm_arrival_speedup > 0.0);
        assert!(report.sim_cache_speedup > 0.0);
        assert!(
            (0.0..=1.0).contains(&report.eval_cache_hit_rate),
            "hit rate must be a ratio, got {}",
            report.eval_cache_hit_rate
        );
        let json = report.to_json();
        assert!(json.contains("arrival_speedup"));
        assert!(json.contains("sim_loop_speedup"));
        assert!(json.contains("warm_arrival_speedup"));
        assert!(json.contains("sim_cache_speedup"));
        assert!(json.contains("eval_cache_hit_rate"));
        assert!(json.contains("topo64_engine"));
        assert!(json.contains("large_incremental"));
        assert!(json.contains("large_cached"));
    }

    #[test]
    fn engine_and_sequential_pick_the_same_placement() {
        let state = mostly_idle_state(64);
        let job =
            JobSpec::new(0, NnModel::AlexNet, BatchClass::Tiny, 2).with_min_utility(0.5);
        let policy = Policy::new(PolicyKind::TopoAware);
        let seq = policy.decide_with(&state, &job, EvalParams::sequential());
        let eng = policy.decide_with(&state, &job, EvalParams::parallel(4));
        assert_eq!(seq, eng);
    }
}
