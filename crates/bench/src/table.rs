//! Minimal aligned text tables for terminal reports.

use std::fmt;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let header_line: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:<w$}"))
            .collect();
        writeln!(f, "  {}", header_line.join("  "))?;
        let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "  {}", "-".repeat(rule))?;
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            writeln!(f, "  {}", line.join("  "))?;
        }
        Ok(())
    }
}

/// Formats a float with fixed decimals (table cell convenience).
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Formats a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("T", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22".into()]);
        let s = t.to_string();
        assert!(s.contains("alpha  1"));
        assert!(s.contains("b      22"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        TextTable::new("T", &["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn float_helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.305), "30.5%");
    }
}
