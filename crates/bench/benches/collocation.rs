//! Criterion bench behind Fig. 6: interference-matrix evaluation and Eq. 4
//! aggregation cost — these sit on the scheduler's hot path (`getInter()`).

use criterion::{criterion_group, criterion_main, Criterion};
use gts_core::perf::interference::{pairwise_slowdown, total_slowdown};
use gts_core::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench_collocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_collocation");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));

    group.bench_function("full_matrix", |b| {
        b.iter(|| {
            let mut sum = 0.0;
            for victim in BatchClass::ALL {
                for aggressor in BatchClass::ALL {
                    sum += pairwise_slowdown(
                        (NnModel::AlexNet, victim),
                        (NnModel::AlexNet, aggressor),
                        1.0,
                    );
                }
            }
            black_box(sum)
        })
    });

    // Eq. 4 with a realistic co-runner population (8 jobs on one machine).
    let corunners: Vec<(NnModel, BatchClass, f64)> = (0..8)
        .map(|i| {
            (
                NnModel::ALL[i % 3],
                BatchClass::ALL[i % 4],
                if i % 2 == 0 { 1.0 } else { 0.35 },
            )
        })
        .collect();
    group.bench_function("total_slowdown_8_corunners", |b| {
        b.iter(|| black_box(total_slowdown((NnModel::AlexNet, BatchClass::Tiny), &corunners)))
    });
    group.finish();
}

criterion_group!(benches, bench_collocation);
criterion_main!(benches);
