//! Criterion bench behind §5.5.3: placement-decision latency per policy as
//! the cluster grows. The paper reports ≈3 s (topology-aware) vs ≈0.45 s
//! (greedy) at 1 000 machines; the reproducible quantity is the ratio and
//! its growth with `|V_P|`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gts_core::prelude::*;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn half_loaded_state(n_machines: usize) -> ClusterState {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, n_machines));
    let mut state = ClusterState::new(cluster, profiles);
    for i in 0..n_machines / 2 {
        let machine = MachineId((2 * i) as u32);
        let job = JobSpec::new(i as u64, NnModel::AlexNet, BatchClass::Small, 2);
        let gpus: Vec<GlobalGpuId> = state.free_gpus(machine)[..2]
            .iter()
            .map(|&gpu| GlobalGpuId { machine, gpu })
            .collect();
        state.place(job, gpus, 1.0);
    }
    state
}

fn bench_decide(c: &mut Criterion) {
    let mut group = c.benchmark_group("s553_decision_latency");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));

    for &n_machines in &[10usize, 100, 400] {
        let state = half_loaded_state(n_machines);
        let job = JobSpec::new(9_999, NnModel::AlexNet, BatchClass::Tiny, 2)
            .with_min_utility(0.5);
        for kind in PolicyKind::ALL {
            let policy = Policy::new(kind);
            group.bench_with_input(
                BenchmarkId::new(kind.to_string(), n_machines),
                &n_machines,
                |b, _| b.iter(|| black_box(policy.decide(&state, &job))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_decide);
criterion_main!(benches);
