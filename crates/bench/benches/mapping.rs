//! Criterion bench behind ablation A2: Fiduccia–Mattheyses and DRB cost
//! versus machine size and job width — the `Θ(|E_A|·log₂|V_P|)` claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gts_core::map::{drb_map, fm_bipartition, AffinityGraph, PlacementOracle, UtilityWeights};
use gts_core::prelude::*;
use std::hint::black_box;
use std::time::Duration;

struct IdleOracle<'a> {
    machine: &'a MachineTopology,
}

impl PlacementOracle for IdleOracle<'_> {
    fn distance(&self, a: GpuId, b: GpuId) -> f64 {
        self.machine.distance(a, b)
    }
    fn interference(&self, _gpus: &[GpuId]) -> f64 {
        1.0
    }
    fn fragmentation_after(&self, _gpus: &[GpuId]) -> f64 {
        0.5
    }
}

fn bench_fm(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_fm_bipartition");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));

    for &(sockets, per_socket) in &[(2usize, 2usize), (2, 4), (4, 4), (4, 8)] {
        let machine = symmetric_machine("bench", sockets, per_socket, LinkProfile::nvlink_dual());
        let gpus: Vec<GpuId> = machine.gpus().collect();
        let graph = AffinityGraph::from_machine(&machine, &gpus);
        let n = gpus.len();
        group.bench_with_input(BenchmarkId::new("gpus", n), &n, |b, _| {
            b.iter(|| black_box(fm_bipartition(&graph, n / 2, 3)))
        });
    }
    group.finish();
}

fn bench_drb(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_drb_map");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));

    for &(sockets, per_socket, tasks) in &[(2usize, 2usize, 2usize), (2, 4, 4), (4, 4, 8), (4, 8, 16)] {
        let machine = symmetric_machine("bench", sockets, per_socket, LinkProfile::nvlink_dual());
        let oracle = IdleOracle { machine: &machine };
        let gpus: Vec<GpuId> = machine.gpus().collect();
        let job = JobGraph::uniform(tasks, 4.0);
        let label = format!("{tasks}tasks_{}gpus", gpus.len());
        group.bench_function(BenchmarkId::new("map", label), |b| {
            b.iter(|| {
                black_box(drb_map(&job, &gpus, &oracle, UtilityWeights::default()).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_fm_passes(c: &mut Criterion) {
    // A2: does FM quality/cost scale with pass count? (The cut converges in
    // 1–2 passes on topology graphs; extra passes only cost time.)
    let machine = symmetric_machine("bench", 4, 8, LinkProfile::nvlink_dual());
    let gpus: Vec<GpuId> = machine.gpus().collect();
    let graph = AffinityGraph::from_machine(&machine, &gpus);
    let n = gpus.len();

    let mut group = c.benchmark_group("a2_fm_passes");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));
    for passes in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("passes", passes), &passes, |b, &p| {
            b.iter(|| black_box(fm_bipartition(&graph, n / 2, p)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fm, bench_drb, bench_fm_passes);
criterion_main!(benches);
