//! Criterion bench for the evaluation substrate itself: end-to-end
//! simulation throughput per policy (Fig. 10/11 machinery) and the
//! utility-weight ablation's inner loop (A1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gts_core::prelude::*;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_simulation(c: &mut Criterion) {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, 5));
    let trace = WorkloadGenerator::with_defaults(1001).generate(100);

    let mut group = c.benchmark_group("sim_scenario1");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));

    for kind in PolicyKind::ALL {
        group.bench_with_input(BenchmarkId::new("policy", kind.to_string()), &kind, |b, &kind| {
            b.iter(|| {
                black_box(simulate(
                    Arc::clone(&cluster),
                    Arc::clone(&profiles),
                    Policy::new(kind),
                    trace.clone(),
                ))
            })
        });
    }
    group.finish();
}

fn bench_weight_ablation(c: &mut Criterion) {
    let machine = power8_minsky();
    let profiles = Arc::new(ProfileLibrary::generate(&machine, 42));
    let cluster = Arc::new(ClusterTopology::homogeneous(machine, 3));
    let trace = WorkloadGenerator::with_defaults(5).generate(40);

    let mut group = c.benchmark_group("a1_weight_ablation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));

    for (label, cc, b_, d) in [
        ("comm_only", 1.0, 0.0, 0.0),
        ("equal", 1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0),
        ("frag_only", 0.0, 0.0, 1.0),
    ] {
        let weights = UtilityWeights::new(cc, b_, d).expect("valid");
        group.bench_function(BenchmarkId::new("weights", label), |bch| {
            bch.iter(|| {
                black_box(simulate(
                    Arc::clone(&cluster),
                    Arc::clone(&profiles),
                    Policy { kind: PolicyKind::TopoAwareP, weights },
                    trace.clone(),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation, bench_weight_ablation);
criterion_main!(benches);
