//! Criterion bench behind Fig. 4: cost of evaluating pack/spread placement
//! performance across the batch sweep, per network.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gts_core::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench_pack_spread(c: &mut Criterion) {
    let machine = power8_minsky();
    let pack = [GpuId(0), GpuId(1)];
    let spread = [GpuId(0), GpuId(2)];

    let mut group = c.benchmark_group("fig4_pack_spread");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));

    for model in NnModel::ALL {
        group.bench_with_input(
            BenchmarkId::new("speedup_sweep", model.to_string()),
            &model,
            |b, &model| {
                b.iter(|| {
                    let mut total = 0.0;
                    for batch in [1u32, 2, 4, 8, 16, 32, 64, 128] {
                        let tp = PlacementPerf::evaluate(&machine, &pack)
                            .iter_time(model, batch)
                            .total_s();
                        let ts = PlacementPerf::evaluate(&machine, &spread)
                            .iter_time(model, batch)
                            .total_s();
                        total += ts / tp;
                    }
                    black_box(total)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pack_spread);
criterion_main!(benches);
